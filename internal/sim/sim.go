// Package sim is the slotted simulation engine that drives the whole
// system: mobility → channel sampling → UDT collection → multicast
// group construction (grouping) → group-level abstraction and demand
// prediction (predict) → shared-feed multicast streaming with swipe
// behavior → ground-truth demand measurement. One reservation interval
// is 5 minutes (paper §III); predictions for interval t are made from
// data up to t−1 and scored against the measured demand of t.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dtmsvs/internal/behavior"
	"dtmsvs/internal/channel"
	"dtmsvs/internal/edge"
	"dtmsvs/internal/grouping"
	"dtmsvs/internal/mobility"
	"dtmsvs/internal/parallel"
	"dtmsvs/internal/predict"
	"dtmsvs/internal/radio"
	"dtmsvs/internal/segment"
	"dtmsvs/internal/stats"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/vecmath"
	"dtmsvs/internal/video"
)

// ErrConfig indicates an invalid simulation configuration.
var ErrConfig = errors.New("sim: invalid config")

// ErrEmptyScenario indicates a degenerate scenario with nothing to
// simulate — no users or no intervals. It wraps ErrConfig, so callers
// matching the broader class keep working; the session API surfaces
// it as a typed error instead of an empty trace with undefined
// summary fields.
var ErrEmptyScenario = fmt.Errorf("empty scenario: %w", ErrConfig)

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives every random choice; a fixed seed reproduces the
	// run bit-for-bit.
	Seed int64
	// NumUsers on the campus.
	NumUsers int
	// NumBS base stations on the grid.
	NumBS int
	// TxPowerDBm per resource block (default 30).
	TxPowerDBm float64
	// CatalogSize is the number of videos (default 500).
	CatalogSize int
	// CategoryWeights biases the catalog mix; nil = News-heavy mix
	// matching Fig. 3 ("users watch News videos most, Game least").
	CategoryWeights []float64
	// IntervalS is the reservation interval (default 300 s).
	IntervalS float64
	// TicksPerInterval is the UDT collection rate per interval
	// (default 30, i.e. one collection every 10 s).
	TicksPerInterval int
	// NumIntervals simulated after warm-up.
	NumIntervals int
	// WarmupIntervals of individual browsing before grouping
	// (default 2).
	WarmupIntervals int
	// RegroupEvery intervals (default 4).
	RegroupEvery int
	// Grouping configures the two-step group construction.
	Grouping grouping.Config
	// CompressorEpochs trains the 1D-CNN after warm-up (default 20).
	CompressorEpochs int
	// CompressorBatch is the CNN fit minibatch size: each optimizer
	// step pushes this many UDT windows through the autoencoder as
	// one blocked-GEMM pass. 0 keeps the compressor default (8);
	// 1 recovers per-window SGD. Ignored when Grouping.CNN.Batch is
	// set explicitly.
	CompressorBatch int
	// AgentEpisodes trains the DDQN after warm-up (default 150).
	AgentEpisodes int
	// TopNRecommend is the recommendation list length (default 50).
	TopNRecommend int
	// NominalRBsPerGroup caps each group's streaming rate
	// (default 3).
	NominalRBsPerGroup int
	// CacheBytes of the edge server (default 2 GiB).
	CacheBytes int64
	// SNRAlpha is the worst-SNR EWMA weight (default 0.4).
	SNRAlpha float64
	// SwipeGapS between consecutive feed videos (default 0.5).
	SwipeGapS float64
	// CoverageQuantile sets the multicast MCS coverage target
	// (default 0.1): the group SNR is the mean of the worst
	// 2×CoverageQuantile share of members (a lower conditional tail
	// expectation), matching eMBMS coverage-based MCS selection while
	// staying robust to extreme-value noise.
	CoverageQuantile float64
	// FixedK, when > 0, bypasses the DDQN and always clusters into
	// FixedK groups (baseline for experiment E2).
	FixedK int
	// RBBudget, when > 0, enables reservation-with-admission: each
	// interval the engine reserves ceil(prediction × (1+ReserveMargin))
	// resource blocks per group from a shared budget; groups whose
	// grant is cut stream at the highest rung the grant sustains.
	// 0 disables admission (every group gets its nominal allocation).
	RBBudget int
	// ReserveMargin is the reservation headroom when RBBudget > 0
	// (default 0.1).
	ReserveMargin float64
	// SegmentS is the video segment length for prefetch-aware
	// delivery (default 4 s).
	SegmentS float64
	// PrefetchDepth is the prefetch window in segments beyond the
	// group playhead (default 2; -1 means no prefetch). Deeper
	// prefetch wastes more traffic when the group swipes — the
	// paper's over-provisioning effect.
	PrefetchDepth int
	// ChurnPerInterval is the fraction of users replaced by fresh
	// arrivals (new preference, mobility and cold twin) at each
	// interval boundary — the user dynamics that force the paper's
	// "frequent and accurate multicast group updates". 0 disables
	// churn.
	ChurnPerInterval float64
	// PerBSGrouping constructs multicast groups independently under
	// each base station (the paper's Fig. 1 architecture: "BSs
	// utilize multicast technology to transmit short videos to each
	// multicast group") instead of campus-wide.
	PerBSGrouping bool
	// OracleK replaces the DDQN with an exhaustive scan over
	// [KMin, KMax] at every group construction — the classical
	// silhouette-maximizing baseline the DDQN amortizes. Mutually
	// exclusive with FixedK.
	OracleK bool
	// FadingRho enables temporally correlated fast fading (AR(1)
	// coefficient between collection ticks; 0 = i.i.d. Rayleigh).
	FadingRho float64
	// Parallelism is the number of worker goroutines the engine fans
	// per-user and per-group work across (0 = runtime.NumCPU(), 1 =
	// fully sequential). The trace is bit-identical for every value:
	// each user, group and churn arrival draws from its own random
	// stream derived from Seed, and all reductions run in index order.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = 30
	}
	if c.CatalogSize == 0 {
		c.CatalogSize = 500
	}
	if c.CategoryWeights == nil {
		// News > Sports > Music > Comedy > Game, as in Fig. 3(a).
		c.CategoryWeights = []float64{5, 3, 2.5, 2, 1}
	}
	if c.IntervalS == 0 {
		c.IntervalS = 300
	}
	if c.TicksPerInterval == 0 {
		c.TicksPerInterval = 30
	}
	if c.WarmupIntervals == 0 {
		c.WarmupIntervals = 2
	}
	if c.RegroupEvery == 0 {
		c.RegroupEvery = 4
	}
	if c.CompressorEpochs == 0 {
		c.CompressorEpochs = 20
	}
	if c.AgentEpisodes == 0 {
		c.AgentEpisodes = 150
	}
	if c.TopNRecommend == 0 {
		c.TopNRecommend = 50
	}
	if c.NominalRBsPerGroup == 0 {
		c.NominalRBsPerGroup = 3
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.SNRAlpha == 0 {
		c.SNRAlpha = 0.4
	}
	if c.SwipeGapS == 0 {
		c.SwipeGapS = 0.5
	}
	if c.CoverageQuantile == 0 {
		c.CoverageQuantile = 0.1
	}
	if c.RBBudget > 0 && c.ReserveMargin == 0 {
		c.ReserveMargin = 0.1
	}
	if c.SegmentS == 0 {
		c.SegmentS = 4
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = 2
	}
	if c.PrefetchDepth < 0 {
		c.PrefetchDepth = 0
	}
	if c.Grouping.WindowSteps == 0 {
		c.Grouping.WindowSteps = 16
	}
	if c.Grouping.PosScale == 0 {
		c.Grouping.PosScale = 2000
	}
	if c.Grouping.KMin == 0 {
		c.Grouping.KMin = 2
	}
	if c.Grouping.KMax == 0 {
		c.Grouping.KMax = 8
	}
	if c.Grouping.CNN.Batch == 0 {
		c.Grouping.CNN.Batch = c.CompressorBatch
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch {
	case d.NumUsers == 0:
		return fmt.Errorf("zero users: %w", ErrEmptyScenario)
	case d.NumIntervals == 0:
		return fmt.Errorf("zero intervals: %w", ErrEmptyScenario)
	case d.NumUsers < 0:
		return fmt.Errorf("users %d: %w", d.NumUsers, ErrConfig)
	case d.NumBS <= 0:
		return fmt.Errorf("base stations %d: %w", d.NumBS, ErrConfig)
	case d.NumIntervals < 0:
		return fmt.Errorf("intervals %d: %w", d.NumIntervals, ErrConfig)
	case d.FixedK < 0 || d.FixedK > d.NumUsers:
		return fmt.Errorf("fixed k %d for %d users: %w", d.FixedK, d.NumUsers, ErrConfig)
	case d.RBBudget < 0 || d.ReserveMargin < 0:
		return fmt.Errorf("rb budget %d margin %v: %w", d.RBBudget, d.ReserveMargin, ErrConfig)
	case d.SegmentS < 0 || d.PrefetchDepth < 0:
		return fmt.Errorf("segment %v depth %d: %w", d.SegmentS, d.PrefetchDepth, ErrConfig)
	case d.ChurnPerInterval < 0 || d.ChurnPerInterval >= 1:
		return fmt.Errorf("churn %v: %w", d.ChurnPerInterval, ErrConfig)
	case d.Parallelism < 0:
		return fmt.Errorf("parallelism %d: %w", d.Parallelism, ErrConfig)
	case d.OracleK && d.FixedK > 0:
		return fmt.Errorf("oracle-k and fixed-k both set: %w", ErrConfig)
	}
	if err := d.Grouping.Validate(); err != nil {
		return err
	}
	return nil
}

// GroupIntervalRecord is one (interval, group) row of the output
// trace: predicted vs measured demand.
type GroupIntervalRecord struct {
	Interval     int     `json:"interval"`
	GroupID      int     `json:"groupId"`
	Size         int     `json:"size"`
	PredictedRBs float64 `json:"predictedRBs"`
	ActualRBs    float64 `json:"actualRBs"`
	// AllocatedRBs is the admission grant when Config.RBBudget > 0
	// (0 otherwise).
	AllocatedRBs    int     `json:"allocatedRBs"`
	PredictedCycles float64 `json:"predictedCycles"`
	ActualCycles    float64 `json:"actualCycles"`
	PredictedBits   float64 `json:"predictedBits"`
	ActualBits      float64 `json:"actualBits"`
	// Waste bits are the delivered-but-unplayed share of traffic
	// caused by swiping under segment prefetching.
	PredictedWasteBits float64 `json:"predictedWasteBits"`
	ActualWasteBits    float64 `json:"actualWasteBits"`
	// ActualEngagementS is the measured mean per-member watch seconds.
	ActualEngagementS float64 `json:"actualEngagementS"`
	WorstSNRdB        float64 `json:"worstSNRdB"`
	BitrateBps        float64 `json:"bitrateBps"`
}

// Trace is the full simulation output.
type Trace struct {
	Records []GroupIntervalRecord
	// SwipeByGroup holds the final abstracted swiping distribution
	// per group id.
	SwipeByGroup map[int]*predict.SwipeDistribution
	// K is the grouping number in use at the end of the run.
	K int
	// Silhouette of the final grouping.
	Silhouette float64
	// CacheHitRate of the edge server over the whole run.
	CacheHitRate float64
	// StabilityByRegroup holds the Rand index between consecutive
	// group constructions (1 = identical partitions).
	StabilityByRegroup []float64
	// ChurnedUsers counts users replaced over the run.
	ChurnedUsers int
}

// GroupSeries extracts the (predicted, actual) RB series of one group.
func (t *Trace) GroupSeries(groupID int) (pred, actual []float64) {
	for _, r := range t.Records {
		if r.GroupID == groupID {
			pred = append(pred, r.PredictedRBs)
			actual = append(actual, r.ActualRBs)
		}
	}
	return pred, actual
}

// RadioAccuracy returns the paper's prediction-accuracy metric over
// all groups' radio demand.
func (t *Trace) RadioAccuracy() (float64, error) {
	var pred, actual []float64
	for _, r := range t.Records {
		pred = append(pred, r.PredictedRBs)
		actual = append(actual, r.ActualRBs)
	}
	return stats.PredictionAccuracy(pred, actual)
}

// ComputeAccuracy returns the volume accuracy over computing demand
// (cycles). Transcoding demand is bursty — zero in cache-warm
// intervals — so the volume metric (1 − Σ|err|/Σactual) is used
// instead of the per-sample percentage metric.
func (t *Trace) ComputeAccuracy() (float64, error) {
	var pred, actual []float64
	for _, r := range t.Records {
		pred = append(pred, r.PredictedCycles)
		actual = append(actual, r.ActualCycles)
	}
	return stats.VolumeAccuracy(pred, actual)
}

// WasteAccuracy returns the volume accuracy of the wasted-traffic
// prediction — the paper's over-provisioning quantity.
func (t *Trace) WasteAccuracy() (float64, error) {
	var pred, actual []float64
	for _, r := range t.Records {
		pred = append(pred, r.PredictedWasteBits)
		actual = append(actual, r.ActualWasteBits)
	}
	return stats.VolumeAccuracy(pred, actual)
}

// Random-stream tags: the first id fed to parallel.DeriveSeed after
// the run seed, keeping each family of derived streams disjoint.
const (
	// streamUser derives (tag, global user id, churn generation):
	// every user — including each fresh churn arrival in the same
	// slot — owns an independent draw sequence for its mobility,
	// channel, behavior and churn decisions. User ids are global
	// across a whole cluster run, so the stream travels with the twin
	// on cross-shard handover.
	streamUser uint64 = 1
	// streamGroup derives (tag, construction counter, group id) — or,
	// in a cluster cell, (tag, cell salt, construction counter, group
	// id): the shared-feed video selection draws of each multicast
	// group.
	streamGroup uint64 = 2
	// streamBuilder derives (tag, cell salt): the grouping builder's
	// private stream in cluster cells (the monolithic engine trains
	// its builder from the run-level generator instead).
	streamBuilder uint64 = 3
)

// user bundles one simulated user's state.
type user struct {
	id int
	// gen is the slot's churn generation: 0 for the original arrival,
	// incremented for each replacement. It feeds the stream derivation
	// so every fresh arrival draws from untouched randomness.
	gen uint64
	// rng is the user's private random stream; all of the user's
	// stochastic state (mobility, link fading, swipe draws, churn
	// decision) draws from it, which is what makes per-user fan-out
	// deterministic under any Parallelism. src is the stream behind
	// it, kept so checkpoints can capture and restore the position.
	src     *parallel.Stream
	rng     *rand.Rand
	profile *behavior.Profile
	mob     mobility.Model
	link    *channel.Link
	twin    *udt.Twin
	// meanSNR is the user's mean sampled SNR over the current
	// interval's ticks.
	meanSNR stats.Online
	// meanX/meanY accumulate the interval's mean position.
	meanX, meanY stats.Online
	lastSNR      float64
	// posPrev/posPrev2 are the mean positions of the two previous
	// intervals, used for velocity extrapolation.
	posPrev, posPrev2 mobility.Point
	havePos           int
	// snrOffset is the DT calibration offset: EWMA of observed SNR
	// minus the deterministic propagation model, absorbing shadowing
	// and mean fading per user.
	snrOffset *predict.SNRForecaster
	// snrEWMA tracks the user's observed mean SNR directly; fused
	// with the model-based forecast to damp extrapolation error.
	snrEWMA *predict.SNRForecaster
	// prevDisp is the last interval-to-interval displacement; persist
	// tracks the cosine similarity of consecutive displacements — the
	// user's velocity persistence, which sets how far the twin
	// extrapolates their position (waypoint turners ≈ 0.5, straight
	// walkers ≈ 1, statics irrelevant).
	prevDispX, prevDispY float64
	persist              *predict.EWMA
}

// groupState is the engine's per-group bookkeeping.
type groupState struct {
	id int
	// rng drives the group's shared-feed video selection; derived per
	// construction so streaming stays deterministic under parallelism.
	// src is the stream behind it, kept for checkpoint capture.
	src *parallel.Stream
	rng *rand.Rand
	// members holds global user ids (not slice indices), so membership
	// survives cross-shard user migration in cluster runs. In the
	// monolithic engine ids and indices coincide.
	members  []int
	forecast *predict.SNRForecaster
	profile  *predict.GroupProfile
	// centroid is the group's center in code space from the last
	// construction (nil when the population was too small to cluster);
	// migrated twins are handed to the nearest centroid.
	centroid []float64
}

// Simulation is a configured engine instance.
type Simulation struct {
	cfg Config
	// rng seeds run-level construction (catalog, builder training);
	// per-user and per-group randomness lives on derived streams. cnt
	// wraps rng's source and counts its draws: the stdlib generator's
	// 607-word register is restored by replaying construction and
	// skipping forward to the recorded count.
	cnt *parallel.CountingSource
	rng *rand.Rand
	// pool fans per-user and per-group stages across workers.
	pool *parallel.Pool
	// gemm fans training GEMM row blocks across a persistent crew of
	// the same worker bound (results are bit-identical for any
	// count); Close releases its workers.
	gemm *vecmath.GEMMPool
	// salt decorrelates this engine's derived group/builder streams
	// from other shards' in a cluster run (0 in the monolithic engine,
	// cell id + 1 in cluster cells).
	salt uint64
	// constructions counts group constructions, deriving each round's
	// per-group streams.
	constructions uint64
	params        channel.Params
	stations      []*channel.BaseStation
	// downBS, when non-nil, is the cluster engine's shared quarantine
	// mask over station ids: stations marked down take no link
	// handovers, churn arrivals or prediction anchors. The engine
	// writes it only between interval fan-outs; nil in the monolithic
	// engine and in healthy clusters, where nearest-BS resolution is
	// bit-identical to channel.NearestBS.
	downBS  []bool
	campus  *mobility.Map
	users   []*user
	catalog *video.Catalog
	server  *edge.Server
	builder *grouping.Builder
	groups  []*groupState
	meanDur float64

	// sched admits per-group RB reservations when RBBudget > 0.
	sched *radio.Scheduler

	// cyclesPerTxS tracks, per ladder level, the observed transcode
	// cycles per transmitted second. The edge cache is shared across
	// groups and stays warm per rung, so the tracker lives on the
	// engine (it must survive regrouping); only the first use of a
	// level anywhere is a cold-transcode interval.
	cyclesPerTxS map[int]*predict.EWMA
	// wastePerPlayS calibrates the waste forecast online: the EWMA of
	// measured waste per playback second. The closed-form swipe-CDF
	// model seeds the forecast, but it assumes independent per-view
	// watch draws while the abstraction stores per-user means, so the
	// measured rate takes over once observed.
	wastePerPlayS *predict.EWMA

	// predictor is the group-level demand model shared by every
	// interval's forecast pass.
	predictor predict.DemandPredictor

	lastResult *grouping.Result
	// prevAssign holds the previous construction's per-user group
	// assignment for stability (Rand index) tracking.
	prevAssign []int
	stability  []float64
	churned    int

	// met holds the stage timers and counters mounted by SetMetrics;
	// the zero value records nothing.
	met engineMetrics
}

// New constructs a simulation.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	cnt := parallel.NewCounting(rand.NewSource(c.Seed).(rand.Source64))
	rng := rand.New(cnt)

	campus := mobility.CampusMap()
	stations, err := channel.GridDeploy(campus, c.NumBS, c.TxPowerDBm)
	if err != nil {
		return nil, err
	}
	params := channel.DefaultParams()
	params.FadingRho = c.FadingRho
	if err := params.Validate(); err != nil {
		return nil, err
	}

	catalog, err := video.NewCatalog(video.CatalogConfig{
		NumVideos:       c.CatalogSize,
		CategoryWeights: c.CategoryWeights,
	}, rng)
	if err != nil {
		return nil, err
	}
	var durSum float64
	for _, v := range catalog.Videos {
		durSum += v.DurationS
	}
	meanDur := durSum / float64(catalog.Size())

	server, err := edge.NewServer(c.CacheBytes, edge.DefaultTranscodeModel(), catalog, c.CatalogSize/10)
	if err != nil {
		return nil, err
	}

	builder, err := grouping.New(c.Grouping, rng)
	if err != nil {
		return nil, err
	}

	users := make([]*user, c.NumUsers)

	wastePerPlayS, err := predict.NewEWMA(0.3)
	if err != nil {
		return nil, err
	}
	var sched *radio.Scheduler
	if c.RBBudget > 0 {
		sched, err = radio.NewScheduler(c.RBBudget)
		if err != nil {
			return nil, err
		}
	}

	pool := parallel.New(c.Parallelism)
	builder.SetPool(pool)
	gemm := vecmath.NewGEMMPool(c.Parallelism)
	builder.SetGEMMPool(gemm)

	eng := &Simulation{
		cfg:           c,
		sched:         sched,
		cnt:           cnt,
		rng:           rng,
		pool:          pool,
		gemm:          gemm,
		params:        params,
		stations:      stations,
		campus:        campus,
		users:         users,
		catalog:       catalog,
		server:        server,
		builder:       builder,
		meanDur:       meanDur,
		cyclesPerTxS:  make(map[int]*predict.EWMA),
		wastePerPlayS: wastePerPlayS,
	}
	eng.predictor = eng.newPredictor()
	if err := pool.For(len(users), func(i int) error {
		u, uerr := eng.newUser(i, parallel.NewStream(c.Seed, streamUser, uint64(i), 0))
		if uerr != nil {
			return uerr
		}
		users[i] = u
		return nil
	}); err != nil {
		return nil, err
	}
	return eng, nil
}

// newPredictor assembles the demand predictor from the engine's
// configuration (the per-interval cache hit rate is refreshed before
// every forecast pass).
func (s *Simulation) newPredictor() predict.DemandPredictor {
	return predict.DemandPredictor{
		Params:             s.params,
		IntervalS:          s.cfg.IntervalS,
		SwipeGapS:          s.cfg.SwipeGapS,
		MeanVideoDurationS: s.meanDur,
		CyclesPerBit:       edge.DefaultTranscodeModel().CyclesPerBit,
		SegmentS:           s.cfg.SegmentS,
		PrefetchDepth:      s.cfg.PrefetchDepth,
	}
}

// userByID resolves a global user id to its state. The users slice is
// kept sorted by id, with ids equal to slice indices in the monolithic
// engine; cluster cells hold sparse id sets and fall back to binary
// search.
func (s *Simulation) userByID(id int) *user {
	if pos := s.userPos(id); pos >= 0 {
		return s.users[pos]
	}
	return nil
}

// newUser creates one simulated user: a favorite-category-biased
// preference (weighted like the catalog so News dominates), one of
// four mobility classes, a link to the nearest BS and a cold twin.
// Every random choice — construction included — draws from the user's
// private stream, so creation order never matters.
func (s *Simulation) newUser(id int, src *parallel.Stream) (*user, error) {
	rng := rand.New(src)
	cats := video.AllCategories()
	favDist, derr := stats.NewCategorical(s.cfg.CategoryWeights)
	if derr != nil {
		return nil, derr
	}
	fav := cats[favDist.Sample(rng)]
	pref, perr := behavior.NewRandomPreference(rng, fav, 6)
	if perr != nil {
		return nil, perr
	}
	profile, perr := behavior.NewProfile(pref, 0.5+0.5*rng.Float64())
	if perr != nil {
		return nil, perr
	}
	var mob mobility.Model
	switch id % 4 {
	case 0:
		mob, perr = mobility.NewRandomWaypoint(s.campus, 0.4, 1.2, 90, rng)
	case 1:
		mob, perr = mobility.NewLandmarkWalk(s.campus, 3+rng.Intn(3), 0.8, rng)
	case 2:
		mob, perr = mobility.NewGaussMarkov(s.campus, 0.9, 0.9, 0.2, 0.25, rng)
	default:
		mob = &mobility.Static{P: s.campus.RandomPoint(rng)}
	}
	if perr != nil {
		return nil, perr
	}
	bs, berr := s.nearestBS(mob.Position())
	if berr != nil {
		return nil, berr
	}
	link, lerr := channel.NewLink(s.params, bs, rng)
	if lerr != nil {
		return nil, lerr
	}
	twin, terr := udt.NewTwin(id, udt.Config{HistoryLen: 4 * s.cfg.TicksPerInterval})
	if terr != nil {
		return nil, terr
	}
	offset, oerr := predict.NewSNRForecaster(0.5)
	if oerr != nil {
		return nil, oerr
	}
	ewma, eerr := predict.NewSNRForecaster(0.6)
	if eerr != nil {
		return nil, eerr
	}
	persist, serr := predict.NewEWMA(0.3)
	if serr != nil {
		return nil, serr
	}
	return &user{
		id: id, src: src, rng: rng, profile: profile, mob: mob, link: link, twin: twin,
		snrOffset: offset, snrEWMA: ewma, persist: persist,
	}, nil
}

// churnUsers replaces each user with probability ChurnPerInterval by
// a fresh arrival (cold twin, new preference and trajectory) and
// returns the number replaced. The churn decision draws from the
// departing user's own stream and the arrival gets a fresh stream
// keyed by the slot's churn generation, so churn neither perturbs
// other users' randomness nor depends on evaluation order — the bug
// class the old shared-RNG draw had, where a churn decision shifted
// every subsequent user's draws for the rest of the run.
func (s *Simulation) churnUsers(ctx context.Context) (int, error) {
	if s.cfg.ChurnPerInterval <= 0 {
		return 0, nil
	}
	replaced := make([]bool, len(s.users))
	if err := s.pool.ForContext(ctx, len(s.users), func(i int) error {
		old := s.users[i]
		if old.rng.Float64() >= s.cfg.ChurnPerInterval {
			return nil
		}
		gen := old.gen + 1
		src := parallel.NewStream(s.cfg.Seed, streamUser, uint64(old.id), gen)
		u, err := s.newUser(old.id, src)
		if err != nil {
			return fmt.Errorf("churn user %d: %w", old.id, err)
		}
		u.gen = gen
		s.users[i] = u
		replaced[i] = true
		return nil
	}); err != nil {
		return 0, err
	}
	var n int
	for _, r := range replaced {
		if r {
			n++
		}
	}
	return n, nil
}

// Catalog exposes the generated catalog (for examples/benches).
func (s *Simulation) Catalog() *video.Catalog { return s.catalog }

// nearestBS resolves the nearest base station to pos, skipping
// stations quarantined by the cluster engine's shared down mask
// (handovers, churn arrivals and prediction anchors all route around
// dark cells). With no mask — the monolithic engine and healthy
// clusters — this is exactly channel.NearestBS.
func (s *Simulation) nearestBS(pos mobility.Point) (*channel.BaseStation, error) {
	return channel.NearestAliveBS(s.stations, s.downBS, pos)
}

// collectTicks runs one interval's worth of mobility + channel
// collection into the UDTs, fanning users across the pool (each
// user's tick sequence is self-contained: own mobility model, own
// link, own twin, own random stream). Users hand over to the nearest
// base station as they move.
func (s *Simulation) collectTicks(ctx context.Context) error {
	dt := s.cfg.IntervalS / float64(s.cfg.TicksPerInterval)
	return s.pool.ForContext(ctx, len(s.users), func(i int) error {
		u := s.users[i]
		for tick := 0; tick < s.cfg.TicksPerInterval; tick++ {
			pos, err := u.mob.Advance(dt)
			if err != nil {
				return fmt.Errorf("user %d mobility: %w", u.id, err)
			}
			nearest, err := s.nearestBS(pos)
			if err != nil {
				return err
			}
			if nearest.ID != u.link.BS().ID {
				if err := u.link.Handover(nearest); err != nil {
					return err
				}
			}
			snr := u.link.Sample(pos)
			u.lastSNR = snr
			u.meanSNR.Add(snr)
			u.meanX.Add(pos.X)
			u.meanY.Add(pos.Y)
			u.twin.Tick()
			if _, err := u.twin.CollectChannel(channel.CQI(snr)); err != nil {
				return fmt.Errorf("user %d channel: %w", u.id, err)
			}
			u.twin.CollectLocation(pos.X, pos.Y)
			if _, err := u.twin.CollectPreference(u.profile.Pref); err != nil {
				return fmt.Errorf("user %d preference: %w", u.id, err)
			}
		}
		return nil
	})
}

// closeInterval folds the finished interval's observations into each
// user's DT calibration state and clears the per-interval
// accumulators. Pure per-user state, fanned across the pool.
func (s *Simulation) closeInterval() {
	_ = s.pool.For(len(s.users), func(i int) error {
		u := s.users[i]
		s.closeUserInterval(u)
		return nil
	})
}

func (s *Simulation) closeUserInterval(u *user) {
	if u.meanSNR.N() > 0 {
		meanPos := mobility.Point{X: u.meanX.Mean(), Y: u.meanY.Mean()}
		d := u.link.BS().Pos.Dist(meanPos)
		model := s.params.MeanSNRdB(u.link.BS().TxPowerDBm, d)
		u.snrOffset.Observe(u.meanSNR.Mean() - model)
		u.snrEWMA.Observe(u.meanSNR.Mean())
		if u.havePos >= 1 {
			dx, dy := meanPos.X-u.posPrev.X, meanPos.Y-u.posPrev.Y
			norm := math.Hypot(dx, dy)
			prevNorm := math.Hypot(u.prevDispX, u.prevDispY)
			if norm > 1 && prevNorm > 1 {
				cos := (dx*u.prevDispX + dy*u.prevDispY) / (norm * prevNorm)
				if cos < 0 {
					cos = 0
				}
				u.persist.Observe(cos)
			}
			u.prevDispX, u.prevDispY = dx, dy
		}
		u.posPrev2 = u.posPrev
		u.posPrev = meanPos
		if u.havePos < 2 {
			u.havePos++
		}
	}
	u.meanSNR = stats.Online{}
	u.meanX = stats.Online{}
	u.meanY = stats.Online{}
}

// predictUserSNR forecasts a user's next-interval mean SNR from the
// digital twin: damped linear position extrapolation from the last
// two interval mean positions, the deterministic propagation model at
// the predicted serving BS plus the per-user calibration offset, and
// a fusion with the directly tracked SNR EWMA. The damping (0.5) and
// fusion guard against extrapolation overshoot when users turn at
// waypoints.
func (s *Simulation) predictUserSNR(u *user) float64 {
	// Extrapolation damping = the user's learned velocity persistence
	// (waypoint turners ~0.4-0.6, straight walkers ~1).
	damp := 0.6
	if pEst, ok := u.persist.Predict(); ok {
		damp = pEst
	}
	// The measured quantity is the mean SNR over the interval's path,
	// so integrate the propagation model along the extrapolated path
	// (interval start ≈ posPrev + 0.5·v, interval end ≈ posPrev +
	// 1.5·v, both damped by the learned persistence) instead of
	// evaluating a single point.
	var model float64
	if u.havePos >= 2 {
		dx := damp * (u.posPrev.X - u.posPrev2.X)
		dy := damp * (u.posPrev.Y - u.posPrev2.Y)
		const samples = 6
		var sum float64
		for k := 0; k < samples; k++ {
			f := 0.5 + float64(k)/float64(samples-1) // 0.5 .. 1.5 intervals ahead
			pt := s.campus.Clamp(mobility.Point{X: u.posPrev.X + f*dx, Y: u.posPrev.Y + f*dy})
			bs, berr := s.nearestBS(pt)
			if berr != nil {
				bs = u.link.BS()
			}
			sum += s.params.MeanSNRdB(bs.TxPowerDBm, bs.Pos.Dist(pt))
		}
		model = sum / samples
	} else {
		pos := u.posPrev
		if u.havePos == 0 {
			pos = u.mob.Position()
		}
		bs, berr := s.nearestBS(pos)
		if berr != nil {
			bs = u.link.BS()
		}
		model = s.params.MeanSNRdB(bs.TxPowerDBm, bs.Pos.Dist(pos))
	}
	offset, okOff := u.snrOffset.Forecast()
	if !okOff {
		// No calibration yet: assume mean Rayleigh fading (-2.5 dB).
		return model - 2.5
	}
	modelPred := model + offset
	if ewma, ok := u.snrEWMA.Forecast(); ok {
		return 0.8*modelPred + 0.2*ewma
	}
	return modelPred
}

// predictGroupWorstSNR is the group-level DT channel forecast at the
// same coverage statistic the scheduler serves.
func (s *Simulation) predictGroupWorstSNR(g *groupState) float64 {
	snrs := make([]float64, 0, len(g.members))
	for _, m := range g.members {
		snrs = append(snrs, s.predictUserSNR(s.userByID(m)))
	}
	return stats.TailMean(snrs, 2*s.cfg.CoverageQuantile)
}

// warmupBrowse lets every user browse individually for one interval to
// populate the watch/engagement series of the twins. Sessions draw
// from each user's private stream, so the fan-out is deterministic.
func (s *Simulation) warmupBrowse(ctx context.Context) error {
	return s.pool.ForContext(ctx, len(s.users), func(i int) error {
		u := s.users[i]
		linkBps := s.params.RateBps(u.meanSNR.Mean()) * float64(s.cfg.NominalRBsPerGroup)
		events, err := behavior.Session(s.catalog, u.profile, s.cfg.IntervalS, linkBps, u.rng)
		if err != nil {
			return fmt.Errorf("user %d session: %w", u.id, err)
		}
		for _, e := range events {
			if _, err := u.twin.CollectView(e.Video.Category, e.WatchS, e.Engagement(), e.Swiped); err != nil {
				return fmt.Errorf("user %d view: %w", u.id, err)
			}
			if err := u.profile.Pref.Update(e.Video.Category, e.Engagement(), 0.05); err != nil {
				return err
			}
		}
		return nil
	})
}

// builtGroup is one constructed multicast group: global member ids
// plus the code-space centroid (nil when the population was too small
// to cluster).
type builtGroup struct {
	ids      []int
	centroid []float64
}

// rebuildGroups runs the two-step construction (or the fixed-K
// baseline) and resets per-group forecasters, preserving forecasts of
// groups whose membership is unchanged.
func (s *Simulation) rebuildGroups() error {
	if len(s.users) == 0 {
		// A cluster cell can be empty between migrations.
		s.groups = nil
		s.prevAssign = nil
		return nil
	}
	built, lastRes, err := s.constructGroups()
	if err != nil {
		return err
	}
	assign := make([]int, len(s.users))
	for i := range assign {
		assign[i] = -1
	}
	for gid, bg := range built {
		for _, id := range bg.ids {
			if pos := s.userPos(id); pos >= 0 {
				assign[pos] = gid
			}
		}
	}
	if s.prevAssign != nil {
		if ri, rerr := grouping.RandIndex(s.prevAssign, assign); rerr == nil {
			s.stability = append(s.stability, ri)
		}
	}
	s.prevAssign = assign
	s.lastResult = lastRes
	s.constructions++
	s.groups = make([]*groupState, len(built))
	for gid, bg := range built {
		f, ferr := predict.NewSNRForecaster(s.cfg.SNRAlpha)
		if ferr != nil {
			return ferr
		}
		src := s.groupStream(s.constructions, uint64(gid))
		s.groups[gid] = &groupState{
			id:       gid,
			src:      src,
			rng:      rand.New(src),
			members:  bg.ids,
			forecast: f,
			centroid: bg.centroid,
		}
	}
	return nil
}

// groupStream derives a group's private feed-selection stream.
// Cluster cells fold their salt in so no two shards ever share a
// stream.
func (s *Simulation) groupStream(construction, gid uint64) *parallel.Stream {
	if s.salt != 0 {
		return parallel.NewStream(s.cfg.Seed, streamGroup, s.salt, construction, gid)
	}
	return parallel.NewStream(s.cfg.Seed, streamGroup, construction, gid)
}

// userPos returns the slice position of a global user id, or -1.
func (s *Simulation) userPos(id int) int {
	if id >= 0 && id < len(s.users) && s.users[id].id == id {
		return id
	}
	i := sort.Search(len(s.users), func(i int) bool { return s.users[i].id >= id })
	if i < len(s.users) && s.users[i].id == id {
		return i
	}
	return -1
}

// constructGroups runs the two-step construction, campus-wide or per
// base station, returning the built groups (global member ids, indexed
// by group id) and a representative grouping.Result for run-level
// statistics (campus-wide mode: the whole construction; per-BS mode:
// the largest cell's construction).
func (s *Simulation) constructGroups() ([]builtGroup, *grouping.Result, error) {
	buildSubset := func(idxs []int) (*grouping.Result, error) {
		twins := make([]*udt.Twin, len(idxs))
		for i, idx := range idxs {
			twins[i] = s.users[idx].twin
		}
		if s.cfg.FixedK > 0 {
			k := s.cfg.FixedK
			if k > len(twins) {
				k = len(twins)
			}
			return s.builder.BuildFixedK(twins, k)
		}
		if s.cfg.OracleK {
			k, _, oerr := s.builder.BestKExhaustive(twins)
			if oerr != nil {
				return nil, oerr
			}
			return s.builder.BuildFixedK(twins, k)
		}
		return s.builder.Build(twins)
	}
	// oneGroup is the fallback for populations too small to cluster
	// (tiny cluster cells): everyone in a single group, no centroid.
	oneGroup := func(idxs []int) builtGroup {
		ids := make([]int, len(idxs))
		for i, idx := range idxs {
			ids[i] = s.users[idx].id
		}
		return builtGroup{ids: ids}
	}

	if !s.cfg.PerBSGrouping {
		all := make([]int, len(s.users))
		for i := range all {
			all[i] = i
		}
		if len(all) <= s.cfg.Grouping.KMin {
			return []builtGroup{oneGroup(all)}, nil, nil
		}
		res, err := buildSubset(all)
		if err != nil {
			return nil, nil, fmt.Errorf("group construction: %w", err)
		}
		built := make([]builtGroup, 0, len(res.Groups))
		for _, g := range res.Groups {
			ids := make([]int, len(g.Members))
			for i, m := range g.Members {
				ids[i] = s.users[m].id
			}
			built = append(built, builtGroup{ids: ids, centroid: g.Centroid})
		}
		return built, res, nil
	}

	// Per-BS: partition users by serving base station, then cluster
	// within each cell. Cells too small to cluster become one group.
	byBS := make(map[int][]int)
	for i, u := range s.users {
		id := u.link.BS().ID
		byBS[id] = append(byBS[id], i)
	}
	bsIDs := make([]int, 0, len(byBS))
	for id := range byBS {
		bsIDs = append(bsIDs, id)
	}
	sort.Ints(bsIDs)

	var built []builtGroup
	var largest *grouping.Result
	var largestSize int
	for _, id := range bsIDs {
		idxs := byBS[id]
		if len(idxs) <= s.cfg.Grouping.KMin {
			built = append(built, oneGroup(idxs))
			continue
		}
		res, err := buildSubset(idxs)
		if err != nil {
			return nil, nil, fmt.Errorf("bs %d group construction: %w", id, err)
		}
		for _, g := range res.Groups {
			if len(g.Members) == 0 {
				continue
			}
			ids := make([]int, len(g.Members))
			for i, m := range g.Members {
				ids[i] = s.users[idxs[m]].id
			}
			built = append(built, builtGroup{ids: ids, centroid: g.Centroid})
		}
		if len(idxs) > largestSize {
			largest, largestSize = res, len(idxs)
		}
	}
	if len(built) == 0 {
		return nil, nil, fmt.Errorf("per-bs grouping produced no groups: %w", ErrConfig)
	}
	return built, largest, nil
}

// groupWorstSNR returns the coverage SNR the multicast MCS must
// serve: the mean of the worst-tail member SNRs (see
// Config.CoverageQuantile).
func (s *Simulation) groupWorstSNR(g *groupState) float64 {
	snrs := make([]float64, 0, len(g.members))
	for _, m := range g.members {
		snrs = append(snrs, s.userByID(m).meanSNR.Mean())
	}
	return stats.TailMean(snrs, 2*s.cfg.CoverageQuantile)
}

// abstractGroups rebuilds each group's profile from the twins'
// cumulative view counters and folds the interval's worst SNR into
// the forecaster. Counters are kept cumulative (not reset) so the
// swiping distributions sharpen over time and remain available right
// after a regroup. Groups are disjoint and twins are only read, so
// the abstraction fans across the pool.
func (s *Simulation) abstractGroups(ctx context.Context) error {
	return s.pool.ForContext(ctx, len(s.groups), func(gi int) error {
		g := s.groups[gi]
		if len(g.members) == 0 {
			// Emptied by cross-shard migration; skip until refilled.
			return nil
		}
		twins := make([]*udt.Twin, len(g.members))
		for i, m := range g.members {
			twins[i] = s.userByID(m).twin
		}
		profile, err := predict.BuildGroupProfile(twins, s.catalog, s.cfg.TopNRecommend)
		if err != nil {
			return fmt.Errorf("group %d profile: %w", g.id, err)
		}
		g.profile = profile
		g.forecast.Observe(s.groupWorstSNR(g))
		return nil
	})
}

// groupBitrate picks the ladder rung the group can sustain with its
// nominal RB allocation at the forecast worst SNR.
func (s *Simulation) groupBitrate(worstSNRdB float64) video.Representation {
	budget := s.params.RateBps(worstSNRdB) * float64(s.cfg.NominalRBsPerGroup)
	probe := &video.Video{Ladder: video.DefaultLadder()}
	return probe.RepAtMost(budget)
}

// streamInterval simulates one interval of shared-feed multicast for a
// group and returns the measured demand.
func (s *Simulation) streamInterval(g *groupState, rep video.Representation) (*predict.Demand, error) {
	if g.profile == nil {
		return nil, fmt.Errorf("group %d streamed before abstraction: %w", g.id, ErrConfig)
	}
	catDist, err := stats.NewCategorical(g.profile.Preference)
	if err != nil {
		return nil, err
	}
	var traffic, wasteBits, cycles, engagement float64
	clock := 0.0
	recIdx := 0
	for clock < s.cfg.IntervalS {
		// Next feed video: mostly from the recommendation list,
		// occasionally explore by preference-weighted category. Feed
		// selection draws from the group's stream, member swipes from
		// each member's own — no shared generator anywhere.
		var v *video.Video
		if len(g.profile.Recommended) > 0 && g.rng.Float64() < 0.8 {
			v = g.profile.Recommended[recIdx%len(g.profile.Recommended)]
			recIdx++
		} else {
			cat := video.AllCategories()[catDist.Sample(g.rng)]
			var verr error
			v, verr = s.catalog.SampleFromCategory(cat, g.rng)
			if verr != nil {
				v = s.catalog.SamplePopular(g.rng)
			}
		}
		// Each member watches until their own swipe; the BS transmits
		// until the last member swipes.
		var maxFrac float64
		for _, m := range g.members {
			u := s.userByID(m)
			frac, ferr := u.profile.WatchFraction(v.Category, u.rng)
			if ferr != nil {
				return nil, ferr
			}
			watch := frac * v.DurationS
			if clock+watch > s.cfg.IntervalS {
				watch = s.cfg.IntervalS - clock
				frac = watch / v.DurationS
			}
			if _, cerr := u.twin.CollectView(v.Category, watch, frac, frac < 0.999); cerr != nil {
				return nil, cerr
			}
			if uerr := u.profile.Pref.Update(v.Category, frac, 0.05); uerr != nil {
				return nil, uerr
			}
			engagement += watch
			if frac > maxFrac {
				maxFrac = frac
			}
		}
		tx := maxFrac * v.DurationS
		if clock+tx > s.cfg.IntervalS {
			tx = s.cfg.IntervalS - clock
		}
		// Segment-level delivery: the BS has transmitted the watched
		// prefix rounded up to segment boundaries plus the prefetch
		// window; the overshoot is wasted traffic.
		delivered, waste, perr := segment.Plan(tx, v.DurationS, s.cfg.SegmentS, s.cfg.PrefetchDepth)
		if perr != nil {
			return nil, perr
		}
		cy, serr := s.server.Serve(v, rep, delivered)
		if serr != nil {
			return nil, serr
		}
		cycles += cy
		traffic += delivered * rep.BitrateBps
		wasteBits += waste * rep.BitrateBps
		clock += tx + s.cfg.SwipeGapS
	}
	perRB := s.params.RateBps(s.groupWorstSNR(g))
	actualRBs := 0.0
	if perRB > 0 {
		actualRBs = (traffic / s.cfg.IntervalS) / perRB
	}
	return &predict.Demand{
		RadioRBs:      actualRBs,
		ComputeCycles: cycles,
		TrafficBits:   traffic,
		WasteBits:     wasteBits,
		EngagementS:   engagement / float64(len(g.members)),
	}, nil
}

// Warmup runs the configured warm-up intervals: individual browsing
// to populate twins and calibrate the per-user SNR offsets.
func (s *Simulation) Warmup() error { return s.WarmupContext(context.Background()) }

// WarmupContext is Warmup with cooperative cancellation, checked at
// every warm-up interval boundary.
func (s *Simulation) WarmupContext(ctx context.Context) error {
	for w := 0; w < s.cfg.WarmupIntervals; w++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.WarmupIntervalContext(ctx); err != nil {
			return err
		}
	}
	return nil
}

// WarmupInterval runs a single warm-up interval (collection +
// individual browsing + calibration fold). The cluster engine steps
// cells one warm-up interval at a time so twin handover can run at
// every interval boundary.
func (s *Simulation) WarmupInterval() error {
	return s.WarmupIntervalContext(context.Background())
}

// WarmupIntervalContext is WarmupInterval under ctx. A cancellation
// that fires mid-interval aborts the fan-out and leaves the engine's
// per-user state indeterminate — callers must stop the run (the
// session layer marks itself failed).
func (s *Simulation) WarmupIntervalContext(ctx context.Context) error {
	t0 := s.met.warmup.Start()
	if err := s.collectTicks(ctx); err != nil {
		return err
	}
	if err := s.warmupBrowse(ctx); err != nil {
		return err
	}
	s.closeInterval()
	s.met.warmup.ObserveSince(t0)
	return nil
}

// CollectTicks runs one interval's worth of mobility + channel
// collection (exported for the cluster engine's per-cell stepping).
func (s *Simulation) CollectTicks() error { return s.collectTicks(context.Background()) }

// Close releases the engine's training GEMM workers. The engine
// stays usable afterwards — any further training GEMMs run
// sequentially with identical results. Idempotent.
func (s *Simulation) Close() { s.gemm.Close() }

// CloseInterval folds the finished interval's observations into the
// per-user calibration state (exported for the cluster engine).
func (s *Simulation) CloseInterval() { s.closeInterval() }

// Churned reports the number of users replaced by churn so far.
func (s *Simulation) Churned() int { return s.churned }

// Train fits the grouping pipeline on the current population: the
// 1D-CNN compressor, then (unless a K baseline is configured) the
// DDQN K-selection agent. Populations too small to cluster skip the
// agent — there is nothing for it to choose between.
func (s *Simulation) Train() error {
	if len(s.users) == 0 {
		return nil
	}
	t0 := s.met.train.Start()
	twins := make([]*udt.Twin, len(s.users))
	for i, u := range s.users {
		twins[i] = u.twin
	}
	if _, err := s.builder.TrainCompressor(twins, s.cfg.CompressorEpochs); err != nil {
		return fmt.Errorf("train compressor: %w", err)
	}
	if s.cfg.FixedK == 0 && !s.cfg.OracleK && len(s.users) > s.cfg.Grouping.KMax {
		if _, err := s.builder.TrainAgent(twins, s.cfg.AgentEpisodes); err != nil {
			return fmt.Errorf("train agent: %w", err)
		}
	}
	s.met.train.ObserveSince(t0)
	return nil
}

// BuildGroups runs one group construction and the follow-up
// abstraction pass.
func (s *Simulation) BuildGroups() error {
	return s.BuildGroupsContext(context.Background())
}

// BuildGroupsContext is BuildGroups under ctx.
func (s *Simulation) BuildGroupsContext(ctx context.Context) error {
	t0 := s.met.build.Start()
	if err := s.rebuildGroups(); err != nil {
		return err
	}
	if err := s.abstractGroups(ctx); err != nil {
		return err
	}
	s.met.build.ObserveSince(t0)
	s.met.groups.Set(float64(len(s.groups)))
	return nil
}

// NumGroups reports the current number of multicast groups.
func (s *Simulation) NumGroups() int { return len(s.groups) }

// NewTrace returns an empty trace ready for RunInterval appends.
func NewTrace() *Trace {
	return &Trace{SwipeByGroup: make(map[int]*predict.SwipeDistribution)}
}

// FinishTrace stamps the run-level statistics onto a trace.
func (s *Simulation) FinishTrace(trace *Trace) {
	for _, g := range s.groups {
		if g.profile != nil {
			trace.SwipeByGroup[g.id] = g.profile.Swipe
		}
	}
	trace.K = len(s.groups)
	if s.lastResult != nil {
		trace.Silhouette = s.lastResult.Silhouette
	}
	trace.CacheHitRate = s.server.Cache().HitRate()
	trace.StabilityByRegroup = append([]float64(nil), s.stability...)
	trace.ChurnedUsers = s.churned
}

// Run executes the full simulation and returns the trace.
func (s *Simulation) Run() (*Trace, error) { return s.RunContext(context.Background()) }

// RunContext executes the full simulation under ctx, with
// cancellation checked at every interval boundary. A cancelled run
// returns ctx.Err() and no trace.
func (s *Simulation) RunContext(ctx context.Context) (*Trace, error) {
	if err := s.WarmupContext(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.Train(); err != nil {
		return nil, err
	}
	if err := s.BuildGroupsContext(ctx); err != nil {
		return nil, err
	}
	trace := NewTrace()
	for interval := 0; interval < s.cfg.NumIntervals; interval++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.RunIntervalContext(ctx, interval, trace); err != nil {
			return nil, err
		}
	}
	s.FinishTrace(trace)
	return trace, nil
}

// refineComputeForecast replaces the closed-form computing forecast
// with the observed steady-state cycles-per-transmitted-second of the
// ladder level once it has been served (the cache stays warm per
// rung); a sub-top level not yet seen anywhere is predicted as a cold
// transcode of the feed.
func (s *Simulation) refineComputeForecast(d *predict.Demand, rep video.Representation) {
	predTxS := d.TrafficBits / rep.BitrateBps
	topRate := video.DefaultLadder()[len(video.DefaultLadder())-1].BitrateBps
	if tracker, ok := s.cyclesPerTxS[rep.Level]; ok {
		if est, okP := tracker.Predict(); okP {
			d.ComputeCycles = est * predTxS
		}
	} else if rep.BitrateBps < topRate {
		d.ComputeCycles = edge.DefaultTranscodeModel().CyclesPerBit * topRate * predTxS
	} else {
		d.ComputeCycles = 0
	}
}

// RunInterval executes one reservation interval — predict, admit,
// collect, stream, re-abstract, churn, regroup, close — appending the
// interval's records to trace. The interval index drives the regroup
// cadence and the record rows; the cluster engine calls this once per
// cell per interval, then migrates twins between cells.
func (s *Simulation) RunInterval(interval int, trace *Trace) error {
	return s.RunIntervalContext(context.Background(), interval, trace)
}

// RunIntervalContext is RunInterval under ctx. A cancellation that
// fires mid-interval aborts the in-flight fan-out and leaves the
// engine (and any records already appended to trace) in an
// indeterminate state: the caller must discard the trace delta and
// stop stepping, which is what the session layer does.
func (s *Simulation) RunIntervalContext(ctx context.Context, interval int, trace *Trace) error {
	// 1. Predict each group's demand for this interval from the
	//    previous interval's abstraction and channel forecast.
	//    Groups only read shared state here (twins, trackers, the
	//    cache hit rate hoisted below), so the forecasts fan
	//    across the pool; preds is indexed by group id.
	type pendingPred struct {
		demand    *predict.Demand
		snr       float64
		rep       video.Representation
		allocated int
		skip      bool
	}
	preds := make([]pendingPred, len(s.groups))
	tSched := s.met.schedule.Start()
	s.predictor.CacheHitRate = s.server.Cache().HitRate()
	if err := s.pool.ForContext(ctx, len(s.groups), func(gi int) error {
		g := s.groups[gi]
		if len(g.members) == 0 {
			// Emptied by cross-shard migration: nothing to serve.
			preds[gi].skip = true
			return nil
		}
		snr := s.predictGroupWorstSNR(g)
		rep := s.groupBitrate(snr)
		d, err := s.predictor.Predict(g.profile, rep.BitrateBps, snr)
		if err != nil {
			return fmt.Errorf("interval %d group %d predict: %w", interval, g.id, err)
		}
		// Calibrate the waste forecast with the measured waste
		// per playback second once available.
		if est, ok := s.wastePerPlayS.Predict(); ok {
			playbackS := (d.TrafficBits - d.WasteBits) / rep.BitrateBps
			corrected := est * playbackS * rep.BitrateBps
			d.TrafficBits += corrected - d.WasteBits
			d.WasteBits = corrected
		}
		s.refineComputeForecast(d, rep)
		preds[gi] = pendingPred{demand: d, snr: snr, rep: rep}
		return nil
	}); err != nil {
		return err
	}

	// Admission: reserve from the shared RB budget and clamp each
	// group's rung to what its grant sustains, re-predicting the
	// demand at the granted bitrate.
	if s.sched != nil {
		s.sched.Reset()
		for _, g := range s.groups {
			p := preds[g.id]
			if p.skip {
				continue
			}
			want := int(math.Ceil(p.demand.RadioRBs * (1 + s.cfg.ReserveMargin)))
			if want < 1 {
				want = 1
			}
			granted := want
			if free := s.sched.Free(); granted > free {
				granted = free
			}
			if granted > 0 {
				if err := s.sched.Allocate(g.id, granted, p.rep.BitrateBps); err != nil {
					return fmt.Errorf("interval %d group %d admit: %w", interval, g.id, err)
				}
			}
			p.allocated = granted
			budget := s.params.RateBps(p.snr) * float64(granted)
			capped := (&video.Video{Ladder: video.DefaultLadder()}).RepAtMost(budget)
			if capped.Level != p.rep.Level {
				p.rep = capped
				s.predictor.CacheHitRate = s.server.Cache().HitRate()
				d, perr := s.predictor.Predict(g.profile, capped.BitrateBps, p.snr)
				if perr != nil {
					return fmt.Errorf("interval %d group %d re-predict: %w", interval, g.id, perr)
				}
				s.refineComputeForecast(d, capped)
				p.demand = d
			}
			preds[g.id] = p
		}
	}
	s.met.schedule.ObserveSince(tSched)

	// 2. Simulate the interval: channel/mobility collection, then
	//    multicast streaming with real swipes.
	tTicks := s.met.tickCollect.Start()
	if err := s.collectTicks(ctx); err != nil {
		return err
	}
	s.met.tickCollect.ObserveSince(tTicks)
	tStream := s.met.stream.Start()
	s.server.ResetInterval()
	for _, g := range s.groups {
		p := preds[g.id]
		if p.skip {
			continue
		}
		actual, err := s.streamInterval(g, p.rep)
		if err != nil {
			return fmt.Errorf("interval %d group %d stream: %w", interval, g.id, err)
		}
		if playbackBits := actual.TrafficBits - actual.WasteBits; playbackBits > 0 {
			playbackS := playbackBits / p.rep.BitrateBps
			s.wastePerPlayS.Observe(actual.WasteBits / playbackS / p.rep.BitrateBps)
		}
		if txS := actual.TrafficBits / p.rep.BitrateBps; txS > 0 {
			tracker, ok := s.cyclesPerTxS[p.rep.Level]
			if !ok {
				cyc, cerr := predict.NewEWMA(0.5)
				if cerr != nil {
					return cerr
				}
				tracker = cyc
				s.cyclesPerTxS[p.rep.Level] = tracker
			}
			tracker.Observe(actual.ComputeCycles / txS)
		}
		trace.Records = append(trace.Records, GroupIntervalRecord{
			Interval:           interval,
			GroupID:            g.id,
			Size:               len(g.members),
			PredictedRBs:       p.demand.RadioRBs,
			ActualRBs:          actual.RadioRBs,
			AllocatedRBs:       p.allocated,
			PredictedCycles:    p.demand.ComputeCycles,
			ActualCycles:       actual.ComputeCycles,
			PredictedBits:      p.demand.TrafficBits,
			ActualBits:         actual.TrafficBits,
			PredictedWasteBits: p.demand.WasteBits,
			ActualWasteBits:    actual.WasteBits,
			ActualEngagementS:  actual.EngagementS,
			WorstSNRdB:         p.snr,
			BitrateBps:         p.rep.BitrateBps,
		})
	}
	s.met.stream.ObserveSince(tStream)

	// 3. Re-abstract group profiles from this interval's data.
	tAbs := s.met.abstract.Start()
	if err := s.abstractGroups(ctx); err != nil {
		return err
	}
	s.met.abstract.ObserveSince(tAbs)

	// 4. User churn, then periodic regrouping to track dynamics.
	tChurn := s.met.churn.Start()
	churned, cerr := s.churnUsers(ctx)
	if cerr != nil {
		return cerr
	}
	s.churned += churned
	s.met.churn.ObserveSince(tChurn)
	s.met.churned.Add(uint64(churned))
	if s.cfg.RegroupEvery > 0 && (interval+1)%s.cfg.RegroupEvery == 0 && interval+1 < s.cfg.NumIntervals {
		tRegroup := s.met.regroup.Start()
		if err := s.rebuildGroups(); err != nil {
			return err
		}
		if err := s.abstractGroups(ctx); err != nil {
			return err
		}
		s.met.regroup.ObserveSince(tRegroup)
	}

	s.closeInterval()
	s.met.intervals.Inc()
	s.met.groups.Set(float64(len(s.groups)))
	return nil
}
