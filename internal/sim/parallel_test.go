package sim

import (
	"reflect"
	"testing"
)

// parallelTestConfig is small enough to run the full pipeline many
// times in a unit test while exercising churn, regrouping and every
// parallel stage.
func parallelTestConfig(seed int64, workers int) Config {
	return Config{
		Seed:             seed,
		NumUsers:         24,
		NumBS:            2,
		NumIntervals:     4,
		TicksPerInterval: 6,
		WarmupIntervals:  1,
		RegroupEvery:     2,
		CompressorEpochs: 2,
		AgentEpisodes:    12,
		ChurnPerInterval: 0.1,
		PrefetchDepth:    -1,
		Parallelism:      workers,
	}
}

// TestRunDeterministicAcrossParallelism is the engine's core
// reproducibility guarantee: for the same seed, Run produces a
// bit-identical Trace whether the pool runs 1, 4 or 8 workers.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		var base *Trace
		for _, workers := range []int{1, 4, 8} {
			s, err := New(parallelTestConfig(seed, workers))
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			trace, err := s.Run()
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if base == nil {
				base = trace
				continue
			}
			if len(trace.Records) != len(base.Records) {
				t.Fatalf("seed %d workers %d: %d records, want %d",
					seed, workers, len(trace.Records), len(base.Records))
			}
			for i := range base.Records {
				if trace.Records[i] != base.Records[i] {
					t.Fatalf("seed %d workers %d: record %d diverged:\n got %+v\nwant %+v",
						seed, workers, i, trace.Records[i], base.Records[i])
				}
			}
			if trace.K != base.K || trace.Silhouette != base.Silhouette ||
				trace.CacheHitRate != base.CacheHitRate || trace.ChurnedUsers != base.ChurnedUsers {
				t.Fatalf("seed %d workers %d: run stats diverged: K %d/%d sil %v/%v cache %v/%v churned %d/%d",
					seed, workers, trace.K, base.K, trace.Silhouette, base.Silhouette,
					trace.CacheHitRate, base.CacheHitRate, trace.ChurnedUsers, base.ChurnedUsers)
			}
			if !reflect.DeepEqual(trace.StabilityByRegroup, base.StabilityByRegroup) {
				t.Fatalf("seed %d workers %d: stability diverged: %v vs %v",
					seed, workers, trace.StabilityByRegroup, base.StabilityByRegroup)
			}
			if !reflect.DeepEqual(trace.SwipeByGroup, base.SwipeByGroup) {
				t.Fatalf("seed %d workers %d: swipe distributions diverged", seed, workers)
			}
		}
	}
}

// TestRunDeterministicRepeat guards plain same-seed reproducibility
// (two runs at the same parallelism).
func TestRunDeterministicRepeat(t *testing.T) {
	run := func() *Trace {
		s, err := New(parallelTestConfig(7, 0)) // 0 = NumCPU
		if err != nil {
			t.Fatal(err)
		}
		trace, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("same-seed runs diverged")
	}
}

func TestParallelismValidation(t *testing.T) {
	cfg := parallelTestConfig(1, -1)
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
}
