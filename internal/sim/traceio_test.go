package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleRecords() []GroupIntervalRecord {
	return []GroupIntervalRecord{
		{Interval: 0, GroupID: 0, Size: 10, PredictedRBs: 3.2, ActualRBs: 3.5,
			AllocatedRBs: 4, PredictedCycles: 1e9, ActualCycles: 1.1e9,
			PredictedBits: 7e8, ActualBits: 7.2e8, WorstSNRdB: 9.5, BitrateBps: 1.85e6},
		{Interval: 0, GroupID: 1, Size: 14, PredictedRBs: 2.1, ActualRBs: 2.0,
			PredictedBits: 5e8, ActualBits: 5.1e8, WorstSNRdB: 12.5, BitrateBps: 2.5e6},
		{Interval: 1, GroupID: 0, Size: 10, PredictedRBs: 3.3, ActualRBs: 3.1,
			PredictedBits: 7e8, ActualBits: 6.9e8, WorstSNRdB: 9.1, BitrateBps: 1.85e6},
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d != %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadRecordsJSONError(t *testing.T) {
	for _, in := range []string{"", "nope", `{"interval": 0}`, `[{"interval": "zero"}]`, `[1, 2]`} {
		if _, err := ReadRecordsJSON(strings.NewReader(in)); err == nil {
			t.Fatalf("malformed input %q must error", in)
		}
	}
}

func TestTraceJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty round trip returned %d records", len(back))
	}
	// A zero-value record must survive unchanged too.
	buf.Reset()
	if err := WriteRecordsJSON(&buf, []GroupIntervalRecord{{}}); err != nil {
		t.Fatal(err)
	}
	back, err = ReadRecordsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != (GroupIntervalRecord{}) {
		t.Fatalf("zero record round trip: %+v", back)
	}
}

func TestTraceCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("empty trace must write only the header, got %d lines", len(lines))
	}
}

func TestTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d csv lines, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "interval,group_id,size,predicted_rbs") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], ",4,") {
		t.Fatalf("allocated rbs missing from %q", lines[1])
	}
}

func TestSummarize(t *testing.T) {
	empty := &Trace{}
	if _, err := empty.Summarize(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	tr := &Trace{Records: sampleRecords()}
	s, err := tr.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Intervals != 2 || s.Groups != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.PeakActualRBs != 3.5 {
		t.Fatalf("peak %v", s.PeakActualRBs)
	}
	wantMean := (3.5 + 2.0 + 3.1) / 3
	if s.MeanActualRBs != wantMean {
		t.Fatalf("mean %v, want %v", s.MeanActualRBs, wantMean)
	}
	if s.RadioAccuracy <= 0.8 || s.RadioAccuracy > 1 {
		t.Fatalf("radio accuracy %v", s.RadioAccuracy)
	}
	if s.TotalBits != 7.2e8+5.1e8+6.9e8 {
		t.Fatalf("total bits %v", s.TotalBits)
	}
}

func TestRunWithRBBudget(t *testing.T) {
	cfg := fastConfig(21)
	cfg.RBBudget = 6 // tight: forces admission cuts
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	perInterval := map[int]int{}
	for _, r := range tr.Records {
		if r.AllocatedRBs < 0 {
			t.Fatalf("negative grant: %+v", r)
		}
		perInterval[r.Interval] += r.AllocatedRBs
	}
	for iv, total := range perInterval {
		if total > 6 {
			t.Fatalf("interval %d allocated %d > budget 6", iv, total)
		}
	}
}

func TestRunBudgetValidation(t *testing.T) {
	cfg := fastConfig(22)
	cfg.RBBudget = -1
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	cfg = fastConfig(23)
	cfg.ReserveMargin = -0.5
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}
