// Observability mount for the engine. SetMetrics attaches an
// obs.Registry after construction — deliberately not a Config field,
// so the checkpoint fingerprint and every existing construction path
// are untouched. All handles are nil-safe: an engine without a
// mounted registry records nothing and pays one nil check per stage
// boundary.
//
// Determinism: the stage timers observe wall-clock durations out of
// band and the counters mirror state the engine already computes;
// nothing here reads the RNG or feeds back into simulation state, so
// traces are bit-identical with metrics on or off.
package sim

import (
	"dtmsvs/internal/obs"
)

// engineMetrics holds the per-engine stage timers and counters. The
// zero value (no registry mounted) is fully inert.
type engineMetrics struct {
	warmup, train, build *obs.Stage

	tickCollect, schedule, stream *obs.Stage
	abstract, churn, regroup      *obs.Stage

	intervals *obs.Counter
	churned   *obs.Counter
	groups    *obs.Gauge
}

// SetMetrics mounts reg on the engine. The labels (e.g. cell="3" in
// a cluster run) are attached to every series the engine registers.
// Component counters — edge cache, GEMM pool, crew — are exported as
// func-backed series reading the components' own atomics, so they
// stay live for HTTP export without any per-operation hook. Call
// before stepping; a nil reg is a no-op.
func (s *Simulation) SetMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	s.met = engineMetrics{
		warmup:      reg.Stage("prologue/warmup", labels...),
		train:       reg.Stage("prologue/train", labels...),
		build:       reg.Stage("prologue/group_build", labels...),
		tickCollect: reg.Stage("interval/tick_collect", labels...),
		schedule:    reg.Stage("interval/schedule", labels...),
		stream:      reg.Stage("interval/stream", labels...),
		abstract:    reg.Stage("interval/abstract", labels...),
		churn:       reg.Stage("interval/churn", labels...),
		regroup:     reg.Stage("interval/regroup", labels...),
		intervals:   reg.Counter("dtmsvs_engine_intervals_total", "Simulation intervals completed by the engine.", labels...),
		churned:     reg.Counter("dtmsvs_churned_users_total", "Users replaced by churn.", labels...),
		groups:      reg.Gauge("dtmsvs_groups", "Current number of multicast groups.", labels...),
	}
	cache := s.server.Cache()
	reg.CounterFunc("dtmsvs_edge_cache_hits_total", "Edge cache lookups served from the cache.",
		func() uint64 { h, _ := cache.Counts(); return uint64(h) }, labels...)
	reg.CounterFunc("dtmsvs_edge_cache_misses_total", "Edge cache lookups that missed.",
		func() uint64 { _, m := cache.Counts(); return uint64(m) }, labels...)
	reg.CounterFunc("dtmsvs_edge_cache_evictions_total", "Edge cache LRU evictions.",
		func() uint64 { return uint64(cache.Evictions()) }, labels...)
	reg.GaugeFunc("dtmsvs_edge_cache_used_bytes", "Bytes resident in the edge cache.",
		func() float64 { return float64(cache.Used()) }, labels...)
	gemm := s.gemm
	reg.CounterFunc("dtmsvs_gemm_fanouts_total", "GEMM kernel calls fanned across the worker crew.",
		func() uint64 { f, _, _ := gemm.Stats(); return f }, labels...)
	reg.CounterFunc("dtmsvs_gemm_sequential_total", "GEMM kernel calls that ran on the sequential kernels.",
		func() uint64 { _, q, _ := gemm.Stats(); return q }, labels...)
	reg.CounterFunc("dtmsvs_gemm_blocks_total", "GEMM destination row blocks executed by crew workers.",
		func() uint64 { _, _, b := gemm.Stats(); return b }, labels...)
	reg.CounterFunc("dtmsvs_crew_runs_total", "Fan-outs dispatched on the training GEMM crew.",
		func() uint64 { r, _ := gemm.CrewStats(); return r }, labels...)
	reg.CounterFunc("dtmsvs_crew_wakes_total", "Parked crew workers woken by GEMM fan-outs.",
		func() uint64 { _, w := gemm.CrewStats(); return w }, labels...)
}
