// This file serializes the full mutable state of a Simulation at an
// interval boundary, and restores it into a freshly constructed
// engine. The contract is bit-exactness: a restored engine produces
// the same draw-for-draw trace suffix the original would have.
//
// The restore strategy is hybrid. Everything derivable from the
// configuration — catalog, stations, campus, untrained network
// shapes, per-user construction draws — is rebuilt by replaying the
// deterministic constructors; the checkpoint carries only what
// evolves afterwards: RNG positions (one splitmix64 word per derived
// stream, a draw count for the run-level stdlib source), trained
// weights, twin histories, calibration EWMAs, mobility/link state,
// group membership + profiles, the edge cache, and the engine's
// bookkeeping counters. Per-interval accumulators (tick statistics,
// scheduler reservations, transcoder cycle meters) are always zeroed
// at a boundary, so they never ride in a checkpoint.
//
// WriteState only runs at interval boundaries — the session layer
// guarantees that by refusing to checkpoint failed sessions.

package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"dtmsvs/internal/channel"
	"dtmsvs/internal/checkpoint"
	"dtmsvs/internal/cnn"
	"dtmsvs/internal/edge"
	"dtmsvs/internal/grouping"
	"dtmsvs/internal/kmeans"
	"dtmsvs/internal/mobility"
	"dtmsvs/internal/nn"
	"dtmsvs/internal/parallel"
	"dtmsvs/internal/predict"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/vecmath"
	"dtmsvs/internal/video"
)

// mobility model kind tags (checkpoint encoding).
const (
	mobWaypoint uint8 = iota
	mobLandmark
	mobGaussMarkov
	mobStatic
)

// WriteState appends the engine's boundary state to a checkpoint as
// the sections "engine", "builder", "cache", "users" and "groups".
func (s *Simulation) WriteState(cw *checkpoint.Writer) error {
	if err := cw.Section("engine", s.encodeEngine); err != nil {
		return err
	}
	if err := cw.Section("builder", s.encodeBuilder); err != nil {
		return err
	}
	if err := cw.Section("cache", s.encodeCache); err != nil {
		return err
	}
	var userErr error
	if err := cw.Section("users", func(e *checkpoint.Enc) {
		userErr = s.encodeUsers(e)
	}); err != nil {
		return err
	}
	if userErr != nil {
		return userErr
	}
	return cw.Section("groups", s.encodeGroups)
}

// ReadState restores boundary state written by WriteState into a
// freshly constructed engine of the identical configuration. Any
// structural damage surfaces as checkpoint.ErrCorrupt.
func (s *Simulation) ReadState(cr *checkpoint.Reader) error {
	if err := readSection(cr, "engine", s.decodeEngine); err != nil {
		return err
	}
	if err := readSection(cr, "builder", s.decodeBuilder); err != nil {
		return err
	}
	if err := readSection(cr, "cache", s.decodeCache); err != nil {
		return err
	}
	if err := readSection(cr, "users", s.decodeUsers); err != nil {
		return err
	}
	return readSection(cr, "groups", s.decodeGroups)
}

// readSection frames one decode callback: section lookup, the
// decode, then the consumed-exactly check.
func readSection(cr *checkpoint.Reader, name string, decode func(*checkpoint.Dec) error) error {
	d, err := cr.Section(name)
	if err != nil {
		return err
	}
	if err := decode(d); err != nil {
		return fmt.Errorf("section %q: %w", name, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("section %q: %w", name, err)
	}
	return nil
}

func (s *Simulation) encodeEngine(e *checkpoint.Enc) {
	e.U64(s.cnt.Draws())
	e.U64(s.constructions)
	e.Int(s.churned)
	e.F64s(s.stability)
	e.Bool(s.prevAssign != nil)
	if s.prevAssign != nil {
		e.Ints(s.prevAssign)
	}
	e.Bool(s.lastResult != nil)
	if s.lastResult != nil {
		e.F64(s.lastResult.Silhouette)
	}
	levels := make([]int, 0, len(s.cyclesPerTxS))
	for lv := range s.cyclesPerTxS {
		levels = append(levels, lv)
	}
	sort.Ints(levels)
	e.U32(uint32(len(levels)))
	for _, lv := range levels {
		st := s.cyclesPerTxS[lv].State()
		e.Int(lv)
		e.F64(st.Value)
		e.Bool(st.Ready)
	}
	st := s.wastePerPlayS.State()
	e.F64(st.Value)
	e.Bool(st.Ready)
}

func (s *Simulation) decodeEngine(d *checkpoint.Dec) error {
	draws := d.U64()
	s.constructions = d.U64()
	s.churned = d.Int()
	s.stability = d.F64s()
	s.prevAssign = nil
	if d.Bool() {
		s.prevAssign = d.Ints()
		if s.prevAssign == nil {
			s.prevAssign = []int{}
		}
	}
	s.lastResult = nil
	if d.Bool() {
		s.lastResult = &grouping.Result{Silhouette: d.F64()}
	}
	nLevels := d.U32()
	clear(s.cyclesPerTxS)
	for i := uint32(0); i < nLevels && d.Err() == nil; i++ {
		lv := d.Int()
		st := predict.EWMAState{Value: d.F64(), Ready: d.Bool()}
		tracker, err := predict.NewEWMA(0.5)
		if err != nil {
			return err
		}
		tracker.SetState(st)
		s.cyclesPerTxS[lv] = tracker
	}
	s.wastePerPlayS.SetState(predict.EWMAState{Value: d.F64(), Ready: d.Bool()})
	if err := d.Err(); err != nil {
		return err
	}
	// The run-level source was replayed through construction; skip it
	// forward to the recorded position.
	if draws < s.cnt.Draws() {
		return fmt.Errorf("run rng at draw %d, checkpoint says %d: %w", s.cnt.Draws(), draws, checkpoint.ErrCorrupt)
	}
	s.cnt.Skip(draws - s.cnt.Draws())
	return nil
}

func (s *Simulation) encodeBuilder(e *checkpoint.Enc) {
	st := s.builder.SaveState()
	e.Bool(st.Compressor != nil)
	if st.Compressor != nil {
		st.Compressor.Encoder.Encode(e)
		st.Compressor.Decoder.Encode(e)
	}
	st.Agent.Encode(e)
}

func (s *Simulation) decodeBuilder(d *checkpoint.Dec) error {
	st := &grouping.State{}
	if d.Bool() {
		st.Compressor = &cnn.State{
			Encoder: nn.DecodeWeightState(d),
			Decoder: nn.DecodeWeightState(d),
		}
	}
	st.Agent = nn.DecodeWeightState(d)
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.builder.LoadState(st); err != nil {
		return fmt.Errorf("%v: %w", err, checkpoint.ErrCorrupt)
	}
	return nil
}

func (s *Simulation) encodeCache(e *checkpoint.Enc) {
	cache := s.server.Cache()
	entries := cache.Entries()
	e.U32(uint32(len(entries)))
	for _, ent := range entries {
		e.Int(ent.VideoID)
		e.Int(ent.Level)
		e.I64(ent.SizeBytes)
	}
	hits, misses := cache.Counts()
	e.Int(hits)
	e.Int(misses)
}

func (s *Simulation) decodeCache(d *checkpoint.Dec) error {
	n := d.U32()
	entries := make([]edge.CacheEntry, 0, min(int(n), 1<<16))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		entries = append(entries, edge.CacheEntry{
			VideoID:   d.Int(),
			Level:     d.Int(),
			SizeBytes: d.I64(),
		})
	}
	hits := d.Int()
	misses := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.server.Cache().Restore(entries, hits, misses); err != nil {
		return fmt.Errorf("%v: %w", err, checkpoint.ErrCorrupt)
	}
	return nil
}

func (s *Simulation) encodeUsers(e *checkpoint.Enc) error {
	e.U32(uint32(len(s.users)))
	for _, u := range s.users {
		if err := s.encodeUser(e, u); err != nil {
			return err
		}
	}
	return nil
}

// encodeUser appends one user's full mutable state: identity and
// stream position first (so decode can replay construction), then
// everything that evolves after construction.
func (s *Simulation) encodeUser(e *checkpoint.Enc, u *user) error {
	e.Int(u.id)
	e.U64(u.gen)
	e.U64(u.src.State())
	e.F64s(u.profile.Pref)
	if err := encodeMobility(e, u.mob); err != nil {
		return err
	}
	ls := u.link.State()
	e.Int(ls.BS)
	e.F64(ls.ShadowDB)
	e.F64(ls.HRe)
	e.F64(ls.HIm)
	blob, err := json.Marshal(u.twin.Snapshot())
	if err != nil {
		return fmt.Errorf("user %d twin: %w", u.id, err)
	}
	e.Blob(blob)
	e.F64(u.posPrev.X)
	e.F64(u.posPrev.Y)
	e.F64(u.posPrev2.X)
	e.F64(u.posPrev2.Y)
	e.Int(u.havePos)
	e.F64(u.prevDispX)
	e.F64(u.prevDispY)
	for _, st := range []predict.EWMAState{u.snrOffset.State(), u.snrEWMA.State(), u.persist.State()} {
		e.F64(st.Value)
		e.Bool(st.Ready)
	}
	return nil
}

// EncodeUser appends the full mutable state of one population member
// — the per-user twin wire encoding of the "users" checkpoint section
// — so a handover can ship the twin to another process. The bytes are
// exactly what decoding via DecodeUser on a cell sharing this cell's
// substrate (catalog, stations, campus, seed) needs to reproduce the
// user draw-for-draw.
func (s *Simulation) EncodeUser(e *checkpoint.Enc, id int) error {
	u := s.userByID(id)
	if u == nil {
		return fmt.Errorf("encode user %d: not a member of this cell: %w", id, ErrConfig)
	}
	return s.encodeUser(e, u)
}

// DecodeUser rebuilds one user from bytes written by EncodeUser,
// replaying the deterministic constructor on this cell's substrate
// and overwriting the mutable state. The returned handle is detached:
// pass it to AttachUser to add it to this cell's population.
func (s *Simulation) DecodeUser(d *checkpoint.Dec) (*User, error) {
	u, err := s.decodeUser(d)
	if err != nil {
		return nil, err
	}
	return &User{u: u}, nil
}

func (s *Simulation) decodeUsers(d *checkpoint.Dec) error {
	n := d.U32()
	if d.Err() != nil {
		return d.Err()
	}
	users := make([]*user, 0, min(int(n), 1<<20))
	for i := uint32(0); i < n; i++ {
		u, err := s.decodeUser(d)
		if err != nil {
			return err
		}
		users = append(users, u)
	}
	s.users = users
	return nil
}

// decodeUser rebuilds one user from its encodeUser bytes: replay the
// constructor on the user's derived stream (this reproduces every
// construction-time draw), then overwrite the mutable state and
// reposition the stream.
func (s *Simulation) decodeUser(d *checkpoint.Dec) (*user, error) {
	id := d.Int()
	gen := d.U64()
	srcState := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if id < 0 {
		return nil, fmt.Errorf("user id %d: %w", id, checkpoint.ErrCorrupt)
	}
	u, err := s.newUser(id, parallel.NewStream(s.cfg.Seed, streamUser, uint64(id), gen))
	if err != nil {
		return nil, fmt.Errorf("user %d replay: %w", id, err)
	}
	u.gen = gen
	pref := d.F64s()
	if len(pref) != len(u.profile.Pref) {
		return nil, fmt.Errorf("user %d preference of %d categories: %w", id, len(pref), checkpoint.ErrCorrupt)
	}
	copy(u.profile.Pref, pref)
	if err := decodeMobility(d, u.mob); err != nil {
		return nil, fmt.Errorf("user %d mobility: %w", id, err)
	}
	var ls channel.LinkState
	ls.BS = d.Int()
	ls.ShadowDB = d.F64()
	ls.HRe = d.F64()
	ls.HIm = d.F64()
	blob := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := u.link.SetState(ls, s.stations); err != nil {
		return nil, fmt.Errorf("user %d link: %v: %w", id, err, checkpoint.ErrCorrupt)
	}
	var snap udt.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return nil, fmt.Errorf("user %d twin: %v: %w", id, err, checkpoint.ErrCorrupt)
	}
	twin, err := udt.Restore(&snap)
	if err != nil {
		return nil, fmt.Errorf("user %d twin: %v: %w", id, err, checkpoint.ErrCorrupt)
	}
	u.twin = twin
	u.posPrev = mobility.Point{X: d.F64(), Y: d.F64()}
	u.posPrev2 = mobility.Point{X: d.F64(), Y: d.F64()}
	u.havePos = d.Int()
	u.prevDispX = d.F64()
	u.prevDispY = d.F64()
	for _, f := range []interface{ SetState(predict.EWMAState) }{u.snrOffset, u.snrEWMA, u.persist} {
		f.SetState(predict.EWMAState{Value: d.F64(), Ready: d.Bool()})
	}
	u.src.SetState(srcState)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return u, nil
}

func encodeMobility(e *checkpoint.Enc, m mobility.Model) error {
	switch mob := m.(type) {
	case *mobility.RandomWaypoint:
		st := mob.State()
		e.U8(mobWaypoint)
		e.F64(st.Pos.X)
		e.F64(st.Pos.Y)
		e.F64(st.Dst.X)
		e.F64(st.Dst.Y)
		e.F64(st.Speed)
		e.F64(st.PauseLeft)
	case *mobility.LandmarkWalk:
		st := mob.State()
		e.U8(mobLandmark)
		e.F64(st.Pos.X)
		e.F64(st.Pos.Y)
		e.Int(st.Next)
	case *mobility.GaussMarkov:
		st := mob.State()
		e.U8(mobGaussMarkov)
		e.F64(st.Pos.X)
		e.F64(st.Pos.Y)
		e.F64(st.Speed)
		e.F64(st.Dir)
	case *mobility.Static:
		e.U8(mobStatic)
	default:
		return fmt.Errorf("unknown mobility model %T: %w", m, ErrConfig)
	}
	return nil
}

func decodeMobility(d *checkpoint.Dec, m mobility.Model) error {
	kind := d.U8()
	if d.Err() != nil {
		return d.Err()
	}
	switch kind {
	case mobWaypoint:
		mob, ok := m.(*mobility.RandomWaypoint)
		st := mobility.WaypointState{
			Pos:       mobility.Point{X: d.F64(), Y: d.F64()},
			Dst:       mobility.Point{X: d.F64(), Y: d.F64()},
			Speed:     d.F64(),
			PauseLeft: d.F64(),
		}
		if !ok {
			return fmt.Errorf("waypoint state for %T: %w", m, checkpoint.ErrCorrupt)
		}
		mob.SetState(st)
	case mobLandmark:
		mob, ok := m.(*mobility.LandmarkWalk)
		st := mobility.WalkState{
			Pos:  mobility.Point{X: d.F64(), Y: d.F64()},
			Next: d.Int(),
		}
		if !ok {
			return fmt.Errorf("landmark state for %T: %w", m, checkpoint.ErrCorrupt)
		}
		mob.SetState(st)
	case mobGaussMarkov:
		mob, ok := m.(*mobility.GaussMarkov)
		st := mobility.GaussMarkovState{
			Pos:   mobility.Point{X: d.F64(), Y: d.F64()},
			Speed: d.F64(),
			Dir:   d.F64(),
		}
		if !ok {
			return fmt.Errorf("gauss-markov state for %T: %w", m, checkpoint.ErrCorrupt)
		}
		mob.SetState(st)
	case mobStatic:
		if _, ok := m.(*mobility.Static); !ok {
			return fmt.Errorf("static state for %T: %w", m, checkpoint.ErrCorrupt)
		}
	default:
		return fmt.Errorf("mobility kind %d: %w", kind, checkpoint.ErrCorrupt)
	}
	return d.Err()
}

func (s *Simulation) encodeGroups(e *checkpoint.Enc) {
	e.U32(uint32(len(s.groups)))
	for _, g := range s.groups {
		e.Int(g.id)
		e.U64(g.src.State())
		e.Ints(g.members)
		fst := g.forecast.State()
		e.F64(fst.Value)
		e.Bool(fst.Ready)
		kmeans.EncodeCentroids(e, []vecmath.Vec{vecmath.Vec(g.centroid)})
		e.Bool(g.profile != nil)
		if g.profile == nil {
			continue
		}
		p := g.profile
		e.U32(uint32(len(p.Swipe.CDF)))
		for ci := range p.Swipe.CDF {
			e.F64s(p.Swipe.CDF[ci])
			e.Int(p.Swipe.Samples[ci])
		}
		e.F64s(p.Preference)
		e.U32(uint32(len(p.Recommended)))
		for _, v := range p.Recommended {
			e.Int(v.ID)
		}
		e.Int(p.Size)
		e.F64(p.MeanEngagementS)
	}
}

func (s *Simulation) decodeGroups(d *checkpoint.Dec) error {
	n := d.U32()
	if d.Err() != nil {
		return d.Err()
	}
	groups := make([]*groupState, 0, min(int(n), 1<<16))
	for i := uint32(0); i < n; i++ {
		g := &groupState{id: d.Int()}
		g.src = parallel.StreamAt(d.U64())
		g.rng = rand.New(g.src)
		g.members = d.Ints()
		if g.members == nil {
			g.members = []int{}
		}
		f, err := predict.NewSNRForecaster(s.cfg.SNRAlpha)
		if err != nil {
			return err
		}
		f.SetState(predict.EWMAState{Value: d.F64(), Ready: d.Bool()})
		g.forecast = f
		cs := kmeans.DecodeCentroids(d)
		if len(cs) == 1 {
			g.centroid = []float64(cs[0])
		}
		hasProfile := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if hasProfile {
			p, err := decodeGroupProfile(d, s.catalog)
			if err != nil {
				return fmt.Errorf("group %d profile: %w", g.id, err)
			}
			g.profile = p
		}
		groups = append(groups, g)
		if err := d.Err(); err != nil {
			return err
		}
	}
	s.groups = groups
	return nil
}

func decodeGroupProfile(d *checkpoint.Dec, catalog *video.Catalog) (*predict.GroupProfile, error) {
	nCat := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if int(nCat) != video.NumCategories {
		return nil, fmt.Errorf("profile with %d categories, want %d: %w", nCat, video.NumCategories, checkpoint.ErrCorrupt)
	}
	swipe := &predict.SwipeDistribution{}
	for ci := 0; ci < video.NumCategories; ci++ {
		swipe.CDF[ci] = d.F64s()
		swipe.Samples[ci] = d.Int()
	}
	p := &predict.GroupProfile{Swipe: swipe}
	p.Preference = d.F64s()
	nRec := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	p.Recommended = make([]*video.Video, 0, min(int(nRec), 1<<20))
	for i := uint32(0); i < nRec && d.Err() == nil; i++ {
		id := d.Int()
		if id < 0 || id >= len(catalog.Videos) {
			return nil, fmt.Errorf("recommended video %d of %d: %w", id, len(catalog.Videos), checkpoint.ErrCorrupt)
		}
		p.Recommended = append(p.Recommended, catalog.Videos[id])
	}
	p.Size = d.Int()
	p.MeanEngagementS = d.F64()
	return p, d.Err()
}
