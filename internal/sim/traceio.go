package sim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteRecordsJSON serializes the trace records as a JSON array.
func WriteRecordsJSON(w io.Writer, records []GroupIntervalRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadRecordsJSON decodes a JSON array of trace records.
func ReadRecordsJSON(r io.Reader) ([]GroupIntervalRecord, error) {
	var out []GroupIntervalRecord
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode trace: %w", err)
	}
	return out, nil
}

// WriteRecordsCSV writes the trace records as CSV with a header row.
func WriteRecordsCSV(w io.Writer, records []GroupIntervalRecord) error {
	cw := csv.NewWriter(w)
	header := []string{
		"interval", "group_id", "size",
		"predicted_rbs", "actual_rbs", "allocated_rbs",
		"predicted_cycles", "actual_cycles",
		"predicted_bits", "actual_bits",
		"predicted_waste_bits", "actual_waste_bits",
		"actual_engagement_s",
		"worst_snr_db", "bitrate_bps",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 10, 64) }
	for i, r := range records {
		row := []string{
			strconv.Itoa(r.Interval),
			strconv.Itoa(r.GroupID),
			strconv.Itoa(r.Size),
			f(r.PredictedRBs), f(r.ActualRBs), strconv.Itoa(r.AllocatedRBs),
			f(r.PredictedCycles), f(r.ActualCycles),
			f(r.PredictedBits), f(r.ActualBits),
			f(r.PredictedWasteBits), f(r.ActualWasteBits),
			f(r.ActualEngagementS),
			f(r.WorstSNRdB), f(r.BitrateBps),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary aggregates a trace into run-level statistics.
type Summary struct {
	Intervals       int     `json:"intervals"`
	Groups          int     `json:"groups"`
	RadioAccuracy   float64 `json:"radioAccuracy"`
	ComputeAccuracy float64 `json:"computeAccuracy"`
	MeanActualRBs   float64 `json:"meanActualRBs"`
	PeakActualRBs   float64 `json:"peakActualRBs"`
	TotalBits       float64 `json:"totalBits"`
	TotalCycles     float64 `json:"totalCycles"`
}

// Summarize computes the run-level summary of a trace.
func (t *Trace) Summarize() (*Summary, error) {
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("empty trace: %w", ErrConfig)
	}
	radio, err := t.RadioAccuracy()
	if err != nil {
		return nil, err
	}
	compute, err := t.ComputeAccuracy()
	if err != nil {
		// A run with zero transcoding has no compute accuracy; report 1.
		compute = 1
	}
	s := &Summary{RadioAccuracy: radio, ComputeAccuracy: compute}
	intervals := map[int]bool{}
	groups := map[int]bool{}
	var rbSum float64
	for _, r := range t.Records {
		intervals[r.Interval] = true
		groups[r.GroupID] = true
		rbSum += r.ActualRBs
		if r.ActualRBs > s.PeakActualRBs {
			s.PeakActualRBs = r.ActualRBs
		}
		s.TotalBits += r.ActualBits
		s.TotalCycles += r.ActualCycles
	}
	s.Intervals = len(intervals)
	s.Groups = len(groups)
	s.MeanActualRBs = rbSum / float64(len(t.Records))
	return s, nil
}
