package sim

import (
	"fmt"
	"io"
	"strconv"

	"dtmsvs/internal/tracebin"
	"dtmsvs/internal/traceio"
)

// recordHeader is the monolithic trace's CSV schema.
var recordHeader = []string{
	"interval", "group_id", "size",
	"predicted_rbs", "actual_rbs", "allocated_rbs",
	"predicted_cycles", "actual_cycles",
	"predicted_bits", "actual_bits",
	"predicted_waste_bits", "actual_waste_bits",
	"actual_engagement_s",
	"worst_snr_db", "bitrate_bps",
}

// CSVHeader returns the record's flat CSV schema.
func (r GroupIntervalRecord) CSVHeader() []string { return recordHeader }

// AppendCSVRow appends the record's CSV fields to dst.
func (r GroupIntervalRecord) AppendCSVRow(dst []string) []string {
	f := traceio.FormatFloat
	return append(dst,
		strconv.Itoa(r.Interval),
		strconv.Itoa(r.GroupID),
		strconv.Itoa(r.Size),
		f(r.PredictedRBs), f(r.ActualRBs), strconv.Itoa(r.AllocatedRBs),
		f(r.PredictedCycles), f(r.ActualCycles),
		f(r.PredictedBits), f(r.ActualBits),
		f(r.PredictedWasteBits), f(r.ActualWasteBits),
		f(r.ActualEngagementS),
		f(r.WorstSNRdB), f(r.BitrateBps),
	)
}

// WriteRecordsJSON serializes the trace records as a JSON array.
func WriteRecordsJSON(w io.Writer, records []GroupIntervalRecord) error {
	return traceio.WriteJSONArray(w, records)
}

// ReadRecordsJSON decodes a JSON array of trace records.
func ReadRecordsJSON(r io.Reader) ([]GroupIntervalRecord, error) {
	return traceio.ReadJSONArray[GroupIntervalRecord](r, "trace")
}

// WriteRecordsCSV writes the trace records as CSV with a header row.
func WriteRecordsCSV(w io.Writer, records []GroupIntervalRecord) error {
	return traceio.WriteCSV(w, records)
}

// BinRecord flattens the record into the binary columnar trace row,
// tagged with its serving cell (-1 for the monolithic engine's
// campus-wide groups).
func (r GroupIntervalRecord) BinRecord(bs int) tracebin.Record {
	return tracebin.Record{
		BS:                 bs,
		Interval:           r.Interval,
		GroupID:            r.GroupID,
		Size:               r.Size,
		PredictedRBs:       r.PredictedRBs,
		ActualRBs:          r.ActualRBs,
		AllocatedRBs:       r.AllocatedRBs,
		PredictedCycles:    r.PredictedCycles,
		ActualCycles:       r.ActualCycles,
		PredictedBits:      r.PredictedBits,
		ActualBits:         r.ActualBits,
		PredictedWasteBits: r.PredictedWasteBits,
		ActualWasteBits:    r.ActualWasteBits,
		ActualEngagementS:  r.ActualEngagementS,
		WorstSNRdB:         r.WorstSNRdB,
		BitrateBps:         r.BitrateBps,
	}
}

// RecordFromBin is the inverse of BinRecord, dropping the cell tag.
func RecordFromBin(b tracebin.Record) GroupIntervalRecord {
	return GroupIntervalRecord{
		Interval:           b.Interval,
		GroupID:            b.GroupID,
		Size:               b.Size,
		PredictedRBs:       b.PredictedRBs,
		ActualRBs:          b.ActualRBs,
		AllocatedRBs:       b.AllocatedRBs,
		PredictedCycles:    b.PredictedCycles,
		ActualCycles:       b.ActualCycles,
		PredictedBits:      b.PredictedBits,
		ActualBits:         b.ActualBits,
		PredictedWasteBits: b.PredictedWasteBits,
		ActualWasteBits:    b.ActualWasteBits,
		ActualEngagementS:  b.ActualEngagementS,
		WorstSNRdB:         b.WorstSNRdB,
		BitrateBps:         b.BitrateBps,
	}
}

// WriteRecordsBin writes the trace records in the binary columnar
// format.
func WriteRecordsBin(w io.Writer, records []GroupIntervalRecord) error {
	bw, err := tracebin.NewWriter(w, tracebin.WriterOptions{})
	if err != nil {
		return err
	}
	rows := make([]tracebin.Record, len(records))
	for i, r := range records {
		rows[i] = r.BinRecord(-1)
	}
	if err := bw.Flush(rows); err != nil {
		return err
	}
	return bw.Close()
}

// ReadRecordsBin decodes a binary columnar trace, dropping cell tags.
func ReadRecordsBin(r io.Reader) ([]GroupIntervalRecord, error) {
	rows, err := tracebin.ReadAll(r)
	if err != nil {
		return nil, err
	}
	records := make([]GroupIntervalRecord, len(rows))
	for i, b := range rows {
		records[i] = RecordFromBin(b)
	}
	return records, nil
}

// Summary aggregates a trace into run-level statistics.
type Summary struct {
	Intervals       int     `json:"intervals"`
	Groups          int     `json:"groups"`
	RadioAccuracy   float64 `json:"radioAccuracy"`
	ComputeAccuracy float64 `json:"computeAccuracy"`
	MeanActualRBs   float64 `json:"meanActualRBs"`
	PeakActualRBs   float64 `json:"peakActualRBs"`
	TotalBits       float64 `json:"totalBits"`
	TotalCycles     float64 `json:"totalCycles"`
}

// Summarize computes the run-level summary of a trace.
func (t *Trace) Summarize() (*Summary, error) {
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("empty trace: %w", ErrConfig)
	}
	radio, err := t.RadioAccuracy()
	if err != nil {
		return nil, err
	}
	compute, err := t.ComputeAccuracy()
	if err != nil {
		// A run with zero transcoding has no compute accuracy; report 1.
		compute = 1
	}
	s := &Summary{RadioAccuracy: radio, ComputeAccuracy: compute}
	intervals := map[int]bool{}
	groups := map[int]bool{}
	var rbSum float64
	for _, r := range t.Records {
		intervals[r.Interval] = true
		groups[r.GroupID] = true
		rbSum += r.ActualRBs
		if r.ActualRBs > s.PeakActualRBs {
			s.PeakActualRBs = r.ActualRBs
		}
		s.TotalBits += r.ActualBits
		s.TotalCycles += r.ActualCycles
	}
	s.Intervals = len(intervals)
	s.Groups = len(groups)
	s.MeanActualRBs = rbSum / float64(len(t.Records))
	return s, nil
}
