// This file holds cell-mode construction and the twin-migration API:
// a cluster cell is a Simulation over one base station's coverage
// area that shares the campus substrate (map, station deployment,
// catalog) with its sibling cells but owns its user slice, edge
// cache, grouping pipeline and derived random streams. The cluster
// engine (package cluster) steps cells through the exported stage
// methods and moves user twins between cells with
// DetachUser/AttachUser at interval boundaries.

package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"dtmsvs/internal/channel"
	"dtmsvs/internal/edge"
	"dtmsvs/internal/grouping"
	"dtmsvs/internal/mobility"
	"dtmsvs/internal/parallel"
	"dtmsvs/internal/predict"
	"dtmsvs/internal/radio"
	"dtmsvs/internal/udt"
	"dtmsvs/internal/vecmath"
	"dtmsvs/internal/video"
)

// Defaulted returns the configuration with every default filled in,
// so the cluster engine sees the same values the engine will run with.
func (c Config) Defaulted() Config { return c.withDefaults() }

// CellOptions injects cluster-owned substrate into a cell engine.
// Every field except DownBS is required.
type CellOptions struct {
	// Stations is the full deployment (cells hand users' links over
	// to any station; ownership is decided at interval boundaries).
	Stations []*channel.BaseStation
	// Campus is the shared map.
	Campus *mobility.Map
	// Catalog is the shared, read-only video catalog.
	Catalog *video.Catalog
	// Server is the cell's private edge cache + transcoder.
	Server *edge.Server
	// Pool fans the cell's per-user and per-group stages.
	Pool *parallel.Pool
	// Salt decorrelates the cell's derived random streams (builder
	// weights, group feed selection) from its siblings'. Must be
	// unique per cell and non-zero; the cluster engine uses
	// cell id + 1.
	Salt uint64
	// GEMMWorkers bounds the cell's training GEMM crew. Zero keeps
	// cfg.Parallelism; the cluster engine divides its worker budget
	// by the number of concurrently training cells so the crews
	// never oversubscribe the host. Purely a wall-clock knob —
	// results are bit-identical at any width.
	GEMMWorkers int
	// DownBS, when non-nil, is the cluster engine's shared quarantine
	// mask over station ids (one slice aliased by every sibling cell):
	// stations marked down take no handovers, churn arrivals or
	// prediction anchors. Optional; the engine writes it only between
	// interval fan-outs.
	DownBS []bool
}

// NewCell constructs a cell engine: a Simulation with zero users that
// shares the campus substrate given in opts. Unlike New, every random
// stream is derived from (Seed, tag, Salt, ...), so sibling cells
// never share a generator and the cluster trace is independent of
// shard scheduling.
func NewCell(cfg Config, opts CellOptions) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch {
	case len(opts.Stations) == 0:
		return nil, fmt.Errorf("cell without stations: %w", ErrConfig)
	case opts.Campus == nil || opts.Catalog == nil || opts.Server == nil || opts.Pool == nil:
		return nil, fmt.Errorf("cell substrate incomplete: %w", ErrConfig)
	case opts.Salt == 0:
		return nil, fmt.Errorf("cell salt must be non-zero: %w", ErrConfig)
	}
	c := cfg.withDefaults()
	params := channel.DefaultParams()
	params.FadingRho = c.FadingRho
	if err := params.Validate(); err != nil {
		return nil, err
	}

	var durSum float64
	for _, v := range opts.Catalog.Videos {
		durSum += v.DurationS
	}
	meanDur := durSum / float64(opts.Catalog.Size())

	cnt := parallel.NewCounting(rand.NewSource(parallel.DeriveSeed(c.Seed, streamBuilder, opts.Salt)).(rand.Source64))
	builderRng := rand.New(cnt)
	builder, err := grouping.New(c.Grouping, builderRng)
	if err != nil {
		return nil, err
	}
	builder.SetPool(opts.Pool)
	// Each cell owns its GEMM crew (a GEMMPool runs one kernel at a
	// time, and sibling cells train concurrently on different
	// shards), sized to the share of the worker budget the cluster
	// engine grants it via GEMMWorkers so the crews of concurrently
	// training cells sum to at most the host budget. Workers park
	// between calls and never spawn below the parallel threshold.
	gw := opts.GEMMWorkers
	if gw == 0 {
		gw = c.Parallelism
	}
	gemm := vecmath.NewGEMMPool(gw)
	builder.SetGEMMPool(gemm)

	wastePerPlayS, err := predict.NewEWMA(0.3)
	if err != nil {
		return nil, err
	}
	var sched *radio.Scheduler
	if c.RBBudget > 0 {
		// Each base station owns its own RB budget.
		sched, err = radio.NewScheduler(c.RBBudget)
		if err != nil {
			return nil, err
		}
	}

	eng := &Simulation{
		cfg:           c,
		sched:         sched,
		cnt:           cnt,
		rng:           builderRng,
		pool:          opts.Pool,
		gemm:          gemm,
		salt:          opts.Salt,
		params:        params,
		stations:      opts.Stations,
		downBS:        opts.DownBS,
		campus:        opts.Campus,
		catalog:       opts.Catalog,
		server:        opts.Server,
		builder:       builder,
		meanDur:       meanDur,
		cyclesPerTxS:  make(map[int]*predict.EWMA),
		wastePerPlayS: wastePerPlayS,
	}
	eng.predictor = eng.newPredictor()
	return eng, nil
}

// User is an opaque handle to one simulated user — twin, mobility
// model, link and calibration state — detached from a cell for
// cross-shard migration. The handle carries the user's private random
// stream, so its draw sequence is unaffected by the move.
type User struct{ u *user }

// ID returns the user's global id.
func (m *User) ID() int { return m.u.id }

// ServingBS returns the id of the base station the user's link is
// currently attached to.
func (m *User) ServingBS() int { return m.u.link.BS().ID }

// Position returns the user's current map position, so the cluster
// engine can route an evacuated twin to the nearest surviving cell.
func (m *User) Position() mobility.Point { return m.u.mob.Position() }

// SpawnUser creates a fresh user with the given global id (churn
// generation 0) without attaching it to this engine. The cluster
// engine spawns the whole population through one cell — creation only
// touches the shared substrate and the user's own derived stream, so
// it does not matter which cell spawns — and attaches each user to
// the cell of its initial serving base station.
func (s *Simulation) SpawnUser(id int) (*User, error) {
	u, err := s.newUser(id, parallel.NewStream(s.cfg.Seed, streamUser, uint64(id), 0))
	if err != nil {
		return nil, err
	}
	return &User{u: u}, nil
}

// NumUsers reports the engine's current population.
func (s *Simulation) NumUsers() int { return len(s.users) }

// UserIDs returns the sorted global ids of the current population.
func (s *Simulation) UserIDs() []int {
	out := make([]int, len(s.users))
	for i, u := range s.users {
		out[i] = u.id
	}
	return out
}

// ServingBSOf returns the serving base station id of the user with
// the given global id, or -1 if the user is not in this engine.
func (s *Simulation) ServingBSOf(id int) int {
	u := s.userByID(id)
	if u == nil {
		return -1
	}
	return u.link.BS().ID
}

// DetachUser removes the user with the given global id from the
// engine — population and multicast group — and returns the handle.
func (s *Simulation) DetachUser(id int) (*User, bool) {
	pos := s.userPos(id)
	if pos < 0 {
		return nil, false
	}
	u := s.users[pos]
	s.users = append(s.users[:pos], s.users[pos+1:]...)
	for _, g := range s.groups {
		for i, m := range g.members {
			if m == id {
				g.members = append(g.members[:i], g.members[i+1:]...)
				break
			}
		}
	}
	// Membership changed under the stability tracker's feet; the next
	// construction starts a fresh baseline.
	s.prevAssign = nil
	return &User{u: u}, true
}

// AttachUser inserts a migrated (or freshly spawned) user into the
// engine, keeping the population sorted by global id. If multicast
// groups exist, the twin is handed to the group with the nearest
// code-space centroid (the per-shard analogue of the paper's group
// update on user dynamics); when no centroid applies it joins the
// smallest group, matching how churn arrivals inherit a slot's
// membership in the monolithic engine.
func (s *Simulation) AttachUser(mu *User) error {
	if mu == nil || mu.u == nil {
		return fmt.Errorf("attach nil user: %w", ErrConfig)
	}
	u := mu.u
	pos := sort.Search(len(s.users), func(i int) bool { return s.users[i].id >= u.id })
	if pos < len(s.users) && s.users[pos].id == u.id {
		return fmt.Errorf("attach duplicate user %d: %w", u.id, ErrConfig)
	}
	s.users = append(s.users, nil)
	copy(s.users[pos+1:], s.users[pos:])
	s.users[pos] = u
	s.prevAssign = nil
	if len(s.groups) == 0 {
		return nil
	}
	gid := s.assignGroup(u)
	s.groups[gid].members = append(s.groups[gid].members, u.id)
	return nil
}

// assignGroup picks the multicast group for a migrated twin: nearest
// centroid in the cell's code space when computable, else the
// smallest group (ties to the lowest id). Always deterministic.
func (s *Simulation) assignGroup(u *user) int {
	if codes, err := s.builder.Codes([]*udt.Twin{u.twin}); err == nil && len(codes) == 1 {
		best, bestD := -1, 0.0
		for _, g := range s.groups {
			if len(g.centroid) != len(codes[0]) {
				continue
			}
			var d float64
			for i, c := range g.centroid {
				diff := codes[0][i] - c
				d += diff * diff
			}
			if best == -1 || d < bestD {
				best, bestD = g.id, d
			}
		}
		if best >= 0 {
			return best
		}
	}
	best := 0
	for _, g := range s.groups[1:] {
		if len(g.members) < len(s.groups[best].members) {
			best = g.id
		}
	}
	return best
}
