package sim

import (
	"errors"
	"testing"

	"dtmsvs/internal/grouping"
)

// fastConfig is a small, quick scenario for unit tests.
func fastConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		NumUsers:         24,
		NumBS:            4,
		CatalogSize:      120,
		NumIntervals:     4,
		TicksPerInterval: 10,
		WarmupIntervals:  1,
		CompressorEpochs: 3,
		AgentEpisodes:    30,
		Grouping:         grouping.Config{WindowSteps: 8, PosScale: 2000, KMin: 2, KMax: 4, UseCNN: true},
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"users", func(c *Config) { c.NumUsers = 0 }},
		{"bs", func(c *Config) { c.NumBS = -1 }},
		{"intervals", func(c *Config) { c.NumIntervals = 0 }},
		{"fixedk", func(c *Config) { c.FixedK = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := fastConfig(1)
			tt.mut(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
	if err := fastConfig(1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := fastConfig(1)
	cfg.NumUsers = 0
	if _, err := New(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func runFast(t *testing.T, cfg Config) *Trace {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunTraceInvariants(t *testing.T) {
	tr := runFast(t, fastConfig(42))
	if tr.K < 2 || tr.K > 4 {
		t.Fatalf("K=%d outside configured range", tr.K)
	}
	// Every interval contributes one record per group active then.
	if len(tr.Records) == 0 {
		t.Fatal("no records")
	}
	perInterval := map[int]int{}
	for _, r := range tr.Records {
		perInterval[r.Interval]++
		if r.Size <= 0 {
			t.Fatalf("record with empty group: %+v", r)
		}
		if r.PredictedRBs < 0 || r.ActualRBs < 0 {
			t.Fatalf("negative RBs: %+v", r)
		}
		if r.PredictedCycles < 0 || r.ActualCycles < 0 {
			t.Fatalf("negative cycles: %+v", r)
		}
		if r.PredictedBits <= 0 || r.ActualBits <= 0 {
			t.Fatalf("degenerate traffic: %+v", r)
		}
		if r.BitrateBps < 400e3 || r.BitrateBps > 2500e3 {
			t.Fatalf("bitrate %v outside ladder", r.BitrateBps)
		}
	}
	if len(perInterval) != 4 {
		t.Fatalf("records span %d intervals, want 4", len(perInterval))
	}
	// Group sizes per interval must sum to the user count.
	sizes := map[int]int{}
	for _, r := range tr.Records {
		if r.Interval == 0 {
			sizes[r.GroupID] = r.Size
		}
	}
	var total int
	for _, s := range sizes {
		total += s
	}
	if total != 24 {
		t.Fatalf("interval-0 group sizes sum to %d, want 24", total)
	}
	if len(tr.SwipeByGroup) == 0 {
		t.Fatal("no swipe distributions in trace")
	}
	acc, err := tr.RadioAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("radio accuracy %v", acc)
	}
}

func TestRunDeterministic(t *testing.T) {
	t1 := runFast(t, fastConfig(7))
	t2 := runFast(t, fastConfig(7))
	if len(t1.Records) != len(t2.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(t1.Records), len(t2.Records))
	}
	for i := range t1.Records {
		if t1.Records[i] != t2.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, t1.Records[i], t2.Records[i])
		}
	}
	if t1.K != t2.K {
		t.Fatal("K differs across identical runs")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	t1 := runFast(t, fastConfig(1))
	t2 := runFast(t, fastConfig(2))
	same := len(t1.Records) == len(t2.Records)
	if same {
		identical := true
		for i := range t1.Records {
			if t1.Records[i] != t2.Records[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestRunFixedKBaseline(t *testing.T) {
	cfg := fastConfig(11)
	cfg.FixedK = 3
	tr := runFast(t, cfg)
	if tr.K != 3 {
		t.Fatalf("fixed-K run ended with K=%d", tr.K)
	}
}

func TestRunNoCNNBaseline(t *testing.T) {
	cfg := fastConfig(13)
	cfg.Grouping.UseCNN = false
	tr := runFast(t, cfg)
	if len(tr.Records) == 0 {
		t.Fatal("no records")
	}
}

func TestGroupSeriesExtraction(t *testing.T) {
	tr := runFast(t, fastConfig(17))
	pred, actual := tr.GroupSeries(0)
	if len(pred) != len(actual) || len(pred) == 0 {
		t.Fatalf("series %d/%d", len(pred), len(actual))
	}
	pn, an := tr.GroupSeries(-1)
	if pn != nil || an != nil {
		t.Fatal("unknown group must give empty series")
	}
}

// The reproduction target: with the default-sized scenario the radio
// prediction accuracy must be in the neighborhood of the paper's
// 95.04 % (we accept ≥85 % for the reduced test-size scenario).
func TestRadioAccuracyBand(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	cfg := Config{Seed: 42, NumUsers: 100, NumBS: 4, NumIntervals: 24}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.RadioAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("radio accuracy %.4f below reproduction band (paper: 0.9504)", acc)
	}
	cacc, err := tr.ComputeAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if cacc < 0.9 {
		t.Fatalf("compute accuracy %.4f below band", cacc)
	}
}

// Fig. 3(a) shape: in the News-heavy default scenario, the abstracted
// group swipe CDF for News must be dominated by the Game CDF (News
// watched longest, Game swiped fastest).
func TestSwipeDistributionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	cfg := Config{Seed: 42, NumUsers: 100, NumBS: 4, NumIntervals: 12}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, d := range tr.SwipeByGroup {
		eNews, e1 := d.ExpectedWatchFraction(1) // News
		eGame, e2 := d.ExpectedWatchFraction(5) // Game
		if e1 != nil || e2 != nil {
			t.Fatal(e1, e2)
		}
		if eNews <= eGame {
			t.Fatalf("news watch fraction %v not above game %v", eNews, eGame)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no groups to check")
	}
}

func TestRunWithChurn(t *testing.T) {
	cfg := fastConfig(31)
	cfg.ChurnPerInterval = 0.15
	cfg.RegroupEvery = 2
	tr := runFast(t, cfg)
	if tr.ChurnedUsers == 0 {
		t.Fatal("15% churn over 4 intervals × 24 users replaced nobody")
	}
	// Stability tracked across at least one regroup.
	if len(tr.StabilityByRegroup) == 0 {
		t.Fatal("no stability samples despite regroups")
	}
	for _, s := range tr.StabilityByRegroup {
		if s < 0 || s > 1 {
			t.Fatalf("stability %v outside [0,1]", s)
		}
	}
}

func TestChurnConfigValidation(t *testing.T) {
	cfg := fastConfig(32)
	cfg.ChurnPerInterval = 1.0
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	cfg.ChurnPerInterval = -0.1
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestRunPerBSGrouping(t *testing.T) {
	cfg := fastConfig(33)
	cfg.PerBSGrouping = true
	tr := runFast(t, cfg)
	if tr.K < 1 {
		t.Fatalf("per-BS run ended with %d groups", tr.K)
	}
	// Partition covers everyone at interval 0.
	var total int
	seen := map[int]bool{}
	for _, r := range tr.Records {
		if r.Interval == 0 && !seen[r.GroupID] {
			seen[r.GroupID] = true
			total += r.Size
		}
	}
	if total != 24 {
		t.Fatalf("per-BS groups cover %d of 24 users", total)
	}
	acc, err := tr.RadioAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestRunOracleK(t *testing.T) {
	cfg := fastConfig(34)
	cfg.OracleK = true
	tr := runFast(t, cfg)
	if tr.K < 2 || tr.K > 4 {
		t.Fatalf("oracle K=%d outside [2,4]", tr.K)
	}
	cfg.FixedK = 2
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("oracle+fixed must be rejected, got %v", err)
	}
}

func TestRunWithCorrelatedFading(t *testing.T) {
	cfg := fastConfig(35)
	cfg.FadingRho = 0.9
	tr := runFast(t, cfg)
	if len(tr.Records) == 0 {
		t.Fatal("no records with correlated fading")
	}
	cfg.FadingRho = 1.5
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid rho must be rejected")
	}
}

// Combined modes: per-BS grouping + churn + admission budget +
// correlated fading in one run must hold all invariants together.
func TestRunCombinedModes(t *testing.T) {
	cfg := fastConfig(36)
	cfg.PerBSGrouping = true
	cfg.ChurnPerInterval = 0.1
	cfg.RBBudget = 12
	cfg.FadingRho = 0.8
	cfg.RegroupEvery = 2
	tr := runFast(t, cfg)
	perInterval := map[int]int{}
	for _, r := range tr.Records {
		perInterval[r.Interval] += r.AllocatedRBs
		if r.Size <= 0 || r.PredictedRBs < 0 || r.ActualRBs < 0 {
			t.Fatalf("bad record %+v", r)
		}
	}
	for iv, total := range perInterval {
		if total > 12 {
			t.Fatalf("interval %d allocated %d > budget", iv, total)
		}
	}
	if _, err := tr.RadioAccuracy(); err != nil {
		t.Fatal(err)
	}
}
