package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"dtmsvs/internal/faultinject"
)

// checkpointCase wires one engine shape — monolithic, or cluster at a
// shard width — into the generic kill-and-resume harness.
type checkpointCase struct {
	name   string
	open   func(opts ...SessionOption) (Session, error)
	resume func(r io.Reader, opts ...SessionOption) (Session, error)
}

func checkpointCases(seed int64, workers int) []checkpointCase {
	simCfg := sessionTestConfig(seed, workers)
	oneShard := ClusterConfig{Sim: simCfg, Shards: 1}
	allShards := ClusterConfig{Sim: simCfg}
	return []checkpointCase{
		{
			name:   "sim",
			open:   func(opts ...SessionOption) (Session, error) { return Open(simCfg, opts...) },
			resume: func(r io.Reader, opts ...SessionOption) (Session, error) { return Resume(simCfg, r, opts...) },
		},
		{
			name: "cluster/shards=1",
			open: func(opts ...SessionOption) (Session, error) { return OpenCluster(oneShard, opts...) },
			resume: func(r io.Reader, opts ...SessionOption) (Session, error) {
				return ResumeCluster(oneShard, r, opts...)
			},
		},
		{
			name: "cluster/shards=all",
			open: func(opts ...SessionOption) (Session, error) { return OpenCluster(allShards, opts...) },
			resume: func(r io.Reader, opts ...SessionOption) (Session, error) {
				return ResumeCluster(allShards, r, opts...)
			},
		},
	}
}

// referenceRun executes the scenario uninterrupted and returns the
// NDJSON stream, per-interval line counts, and the checkpoint taken
// at the final boundary.
func referenceRun(t *testing.T, open func(opts ...SessionOption) (Session, error)) (string, []int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	var perInterval []int
	s, err := open(
		WithSink(NewNDJSONSink(&buf)),
		WithObserver(func(rep IntervalReport) { perInterval = append(perInterval, len(rep.Records)) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	var ckpt bytes.Buffer
	if cerr := s.Checkpoint(&ckpt); cerr != nil {
		t.Fatalf("final checkpoint: %v", cerr)
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	return buf.String(), perInterval, ckpt.Bytes()
}

// TestSessionCheckpointResumeAtEveryBoundary is the determinism
// contract of the tentpole: for both engines, at Parallelism 1/4/8
// and shard widths 1/NumBS, a run checkpointed after k intervals and
// resumed into a fresh process produces (a) a trace suffix that makes
// prefix+suffix bit-identical to the uninterrupted run and (b) a
// final-boundary checkpoint bit-identical to the uninterrupted run's.
func TestSessionCheckpointResumeAtEveryBoundary(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		for _, tc := range checkpointCases(11, workers) {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				full, perInterval, finalCkpt := referenceRun(t, tc.open)
				intervals := len(perInterval)
				if intervals == 0 {
					t.Fatal("no intervals ran")
				}
				for k := 0; k <= intervals; k++ {
					var pre bytes.Buffer
					s, err := tc.open(WithSink(NewNDJSONSink(&pre)))
					if err != nil {
						t.Fatal(err)
					}
					for step := 0; step < k; step++ {
						if _, serr := s.Step(context.Background()); serr != nil {
							t.Fatalf("boundary %d step %d: %v", k, step, serr)
						}
					}
					var ckpt bytes.Buffer
					if cerr := s.Checkpoint(&ckpt); cerr != nil {
						t.Fatalf("checkpoint at boundary %d: %v", k, cerr)
					}
					if cerr := s.Close(); cerr != nil {
						t.Fatal(cerr)
					}
					var lines int
					for _, n := range perInterval[:k] {
						lines += n
					}
					if pre.String() != linePrefix(full, lines) {
						t.Fatalf("boundary %d: flushed prefix diverged", k)
					}
					var post bytes.Buffer
					rs, err := tc.resume(bytes.NewReader(ckpt.Bytes()), WithSink(NewNDJSONSink(&post)))
					if err != nil {
						t.Fatalf("resume at boundary %d: %v", k, err)
					}
					if got := rs.Interval(); got != k {
						t.Fatalf("resumed at interval %d, want %d", got, k)
					}
					for !rs.Done() {
						if _, serr := rs.Step(context.Background()); serr != nil {
							t.Fatalf("resumed step at boundary %d: %v", k, serr)
						}
					}
					var reCkpt bytes.Buffer
					if cerr := rs.Checkpoint(&reCkpt); cerr != nil {
						t.Fatalf("final checkpoint of resumed run at boundary %d: %v", k, cerr)
					}
					if cerr := rs.Close(); cerr != nil {
						t.Fatal(cerr)
					}
					if pre.String()+post.String() != full {
						t.Fatalf("boundary %d: resumed suffix diverged from uninterrupted run", k)
					}
					if !bytes.Equal(reCkpt.Bytes(), finalCkpt) {
						t.Fatalf("boundary %d: final checkpoint of resumed run diverged", k)
					}
				}
			})
		}
	}
}

// TestSessionCheckpointMidPrologue: checkpoints taken between warm-up
// intervals — before training has run — restore exactly. The harness
// drives the prologue's internal boundary white-box, since Step runs
// the whole prologue in one call.
func TestSessionCheckpointMidPrologue(t *testing.T) {
	cfg := sessionTestConfig(13, 2)
	cfg.WarmupIntervals = 2

	for _, tc := range []struct {
		name   string
		open   func(opts ...SessionOption) (*session, Session, error)
		resume func(r io.Reader, opts ...SessionOption) (Session, error)
	}{
		{
			"sim",
			func(opts ...SessionOption) (*session, Session, error) {
				s, err := Open(cfg, opts...)
				if err != nil {
					return nil, nil, err
				}
				return &s.session, s, nil
			},
			func(r io.Reader, opts ...SessionOption) (Session, error) { return Resume(cfg, r, opts...) },
		},
		{
			"cluster",
			func(opts ...SessionOption) (*session, Session, error) {
				s, err := OpenCluster(ClusterConfig{Sim: cfg}, opts...)
				if err != nil {
					return nil, nil, err
				}
				return &s.session, s, nil
			},
			func(r io.Reader, opts ...SessionOption) (Session, error) {
				return ResumeCluster(ClusterConfig{Sim: cfg}, r, opts...)
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var refBuf bytes.Buffer
			ref, refSess, err := tc.open(WithSink(NewNDJSONSink(&refBuf)))
			if err != nil {
				t.Fatal(err)
			}
			_ = ref
			for !refSess.Done() {
				if _, serr := refSess.Step(context.Background()); serr != nil {
					t.Fatal(serr)
				}
			}
			refSess.Close()
			full := refBuf.String()

			inner, sess, err := tc.open()
			if err != nil {
				t.Fatal(err)
			}
			// One warm-up interval done, one to go: an internal prologue
			// boundary no Step call ever pauses at.
			if werr := inner.eng.warmupStep(context.Background()); werr != nil {
				t.Fatal(werr)
			}
			inner.warmupDone++
			var ckpt bytes.Buffer
			if cerr := sess.Checkpoint(&ckpt); cerr != nil {
				t.Fatalf("mid-prologue checkpoint: %v", cerr)
			}
			sess.Close()

			var buf bytes.Buffer
			rs, err := tc.resume(bytes.NewReader(ckpt.Bytes()), WithSink(NewNDJSONSink(&buf)))
			if err != nil {
				t.Fatalf("mid-prologue resume: %v", err)
			}
			for !rs.Done() {
				if _, serr := rs.Step(context.Background()); serr != nil {
					t.Fatal(serr)
				}
			}
			rs.Close()
			if buf.String() != full {
				t.Fatal("mid-prologue resume diverged from uninterrupted run")
			}
		})
	}
}

// TestSessionCheckpointAfterMidIntervalFault is the kill-and-resume
// path for crashes that land inside an interval: a permanently
// failing sink aborts Step with ErrSink, the failed session refuses
// further checkpoints, and resuming from the last boundary checkpoint
// replays the killed interval bit-identically.
func TestSessionCheckpointAfterMidIntervalFault(t *testing.T) {
	for _, tc := range checkpointCases(17, 4) {
		t.Run(tc.name, func(t *testing.T) {
			full, perInterval, _ := referenceRun(t, tc.open)
			const k = 1 // crash during interval 1
			if len(perInterval) <= k {
				t.Fatalf("scenario too short: %d intervals", len(perInterval))
			}
			prefixLines := perInterval[0]
			// Fail partway through interval k's records, mid-interval.
			fault := faultinject.Fault{Mode: faultinject.FailWrite, N: prefixLines + 1 + perInterval[k]/2}

			var buf bytes.Buffer
			sink := faultinject.Wrap[TraceRecord](NewNDJSONSink(&buf), fault)
			s, err := tc.open(WithSink(sink))
			if err != nil {
				t.Fatal(err)
			}
			if _, serr := s.Step(context.Background()); serr != nil {
				t.Fatal(serr)
			}
			var ckpt bytes.Buffer
			if cerr := s.Checkpoint(&ckpt); cerr != nil {
				t.Fatal(cerr)
			}
			_, serr := s.Step(context.Background())
			if !errors.Is(serr, ErrSink) || !errors.Is(serr, faultinject.ErrInjected) {
				t.Fatalf("want ErrSink wrapping the injected fault, got %v", serr)
			}
			// The failed session refuses checkpoints (its engine has
			// advanced past the session counters)...
			if cerr := s.Checkpoint(io.Discard); !errors.Is(cerr, ErrSink) {
				t.Fatalf("checkpoint of failed session: want the Step failure, got %v", cerr)
			}
			// ...and Close after the failure is clean: the broken sink is
			// not flushed again.
			if cerr := s.Close(); cerr != nil {
				t.Fatalf("close after failed step: %v", cerr)
			}
			if buf.String() != linePrefix(full, prefixLines) {
				t.Fatal("failed run leaked bytes past the last whole-interval flush")
			}

			var post bytes.Buffer
			rs, err := tc.resume(bytes.NewReader(ckpt.Bytes()), WithSink(NewNDJSONSink(&post)))
			if err != nil {
				t.Fatal(err)
			}
			for !rs.Done() {
				if _, serr := rs.Step(context.Background()); serr != nil {
					t.Fatal(serr)
				}
			}
			rs.Close()
			if buf.String()+post.String() != full {
				t.Fatal("resume after mid-interval fault diverged from uninterrupted run")
			}
		})
	}
}

// TestSessionCheckpointRejectsDamage: truncations and bit flips at
// every region of the stream surface as typed checkpoint errors —
// never a panic, never a silently wrong resume.
func TestSessionCheckpointRejectsDamage(t *testing.T) {
	cfg := sessionTestConfig(5, 2)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := s.Step(context.Background()); serr != nil {
		t.Fatal(serr)
	}
	var ckpt bytes.Buffer
	if cerr := s.Checkpoint(&ckpt); cerr != nil {
		t.Fatal(cerr)
	}
	s.Close()
	raw := ckpt.Bytes()

	isTyped := func(err error) bool {
		return errors.Is(err, ErrCheckpointCorrupt) ||
			errors.Is(err, ErrCheckpointVersion) ||
			errors.Is(err, ErrCheckpointConfig)
	}
	// Every truncation length (sampled past the header region).
	for n := 0; n < len(raw); n += max(1, min(n/64, 97)) {
		if _, rerr := Resume(cfg, bytes.NewReader(raw[:n])); !isTyped(rerr) {
			t.Fatalf("truncation at %d/%d: want typed checkpoint error, got %v", n, len(raw), rerr)
		}
	}
	// Bit flips across the stream: header, section framing, payloads,
	// CRCs.
	for i := 0; i < len(raw); i += max(1, len(raw)/512) {
		mut := bytes.Clone(raw)
		mut[i] ^= 0x40
		if _, rerr := Resume(cfg, bytes.NewReader(mut)); !isTyped(rerr) {
			t.Fatalf("bit flip at %d/%d: want typed checkpoint error, got %v", i, len(raw), rerr)
		}
	}
	// A future format version is ErrCheckpointVersion specifically.
	mut := bytes.Clone(raw)
	mut[8] = 0xFE
	mut[9] = 0x7F
	if _, rerr := Resume(cfg, bytes.NewReader(mut)); !errors.Is(rerr, ErrCheckpointVersion) {
		t.Fatalf("version bump: want ErrCheckpointVersion, got %v", rerr)
	}
	// The wrong engine kind and the wrong configuration are both
	// ErrCheckpointConfig.
	if _, rerr := ResumeCluster(ClusterConfig{Sim: cfg}, bytes.NewReader(raw)); !errors.Is(rerr, ErrCheckpointConfig) {
		t.Fatalf("sim checkpoint into cluster session: want ErrCheckpointConfig, got %v", rerr)
	}
	other := cfg
	other.Seed++
	if _, rerr := Resume(other, bytes.NewReader(raw)); !errors.Is(rerr, ErrCheckpointConfig) {
		t.Fatalf("different config: want ErrCheckpointConfig, got %v", rerr)
	}
}
