package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"dtmsvs/internal/vecmath"
)

// chaosConfig is clusterTestConfig plus one injected fault: cell 1
// dies at the start of interval 1 and (under a revival policy) comes
// back at interval 3, so the scenario covers failure, two degraded
// intervals, evacuation, and a revived cell serving again.
func chaosConfig(seed int64, workers, shards int) ClusterConfig {
	cfg := clusterTestConfig(seed, workers, shards)
	cfg.Faults = []CellFault{{Cell: 1, FailAt: 1, ReviveAt: 3}}
	return cfg
}

// runDegraded drives a degraded cluster session to completion and
// returns its trace.
func runDegraded(t *testing.T, cfg ClusterConfig, policy CellFailurePolicy) *ClusterTrace {
	t.Helper()
	s, err := OpenCluster(cfg, WithCellFailurePolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	return s.Trace()
}

// TestClusterDegradedDeterministic is the degraded-mode acceptance
// gate: with a cell failing mid-run and reviving later, the trace is
// bit-identical across {dispatched, forced-generic} kernels ×
// Parallelism {1,4,8} × shard widths {1, NumBS}, twin conservation
// holds after evacuation, and the failure bookkeeping is exact.
func TestClusterDegradedDeterministic(t *testing.T) {
	defer vecmath.ForceGeneric(false)
	var base *ClusterTrace
	for _, kv := range kernelVariants {
		vecmath.ForceGeneric(kv.generic)
		for _, workers := range []int{1, 4, 8} {
			for _, shards := range []int{1, 4} { // 4 == NumBS
				trace := runDegraded(t, chaosConfig(21, workers, shards), CellDegradeWithRevival)
				if base == nil {
					base = trace
					continue
				}
				if !reflect.DeepEqual(trace.Records, base.Records) {
					t.Fatalf("%s workers %d shards %d: degraded records diverged", kv.name, workers, shards)
				}
				if !reflect.DeepEqual(trace.Cells, base.Cells) {
					t.Fatalf("%s workers %d shards %d: degraded cell stats diverged", kv.name, workers, shards)
				}
			}
		}
	}
	vecmath.ForceGeneric(false)
	if len(base.Records) == 0 {
		t.Fatal("empty degraded trace")
	}
	// Failure bookkeeping: one failure at interval 1, revival at
	// interval 3, so exactly intervals 1 and 2 ran degraded.
	if base.CellFailures != 1 || base.Revivals != 1 {
		t.Fatalf("failures %d revivals %d, want 1 and 1", base.CellFailures, base.Revivals)
	}
	if base.DegradedIntervals != 2 {
		t.Fatalf("degraded intervals %d, want 2", base.DegradedIntervals)
	}
	if base.EvacuatedTwins == 0 {
		t.Fatal("no twins evacuated off the failed cell")
	}
	if base.EvacuatedTwins != base.Cells[1].EvacuatedTwins {
		t.Fatalf("aggregate evacuations %d != cell 1's %d", base.EvacuatedTwins, base.Cells[1].EvacuatedTwins)
	}
	if base.Cells[1].Down {
		t.Fatal("cell 1 still marked down after revival")
	}
	// Conservation: every twin in exactly one cell after evacuation.
	var users int
	for _, c := range base.Cells {
		users += c.Users
	}
	if users != 32 {
		t.Fatalf("%d twins across cells after evacuation, want 32", users)
	}
	// No-records run on the failed cell during quarantine: interval 1
	// and 2 must carry no rows for cell 1.
	for _, r := range base.Records {
		if r.BS == 1 && (r.Interval == 1 || r.Interval == 2) {
			t.Fatalf("quarantined cell 1 produced a record at interval %d", r.Interval)
		}
	}
}

// TestClusterDegradeKeepsCellDown: under plain Degrade the revival
// schedule is ignored — the cell stays quarantined to the end — and
// the per-interval reports expose the degradation to observers.
func TestClusterDegradeKeepsCellDown(t *testing.T) {
	cfg := chaosConfig(21, 2, 0)
	s, err := OpenCluster(cfg, WithCellFailurePolicy(CellDegrade))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var downByStep []int
	for !s.Done() {
		rep, serr := s.Step(context.Background())
		if serr != nil {
			t.Fatal(serr)
		}
		downByStep = append(downByStep, rep.CellsDown)
		if rep.CellsDown > 0 && rep.EvacuatedTwins == 0 {
			t.Fatalf("interval %d degraded but reports zero evacuations", rep.Interval-1)
		}
	}
	trace := s.Trace()
	if want := []int{0, 1, 1, 1}; !reflect.DeepEqual(downByStep, want) {
		t.Fatalf("CellsDown per step = %v, want %v", downByStep, want)
	}
	if trace.Revivals != 0 {
		t.Fatalf("plain Degrade revived %d cells", trace.Revivals)
	}
	if !trace.Cells[1].Down {
		t.Fatal("cell 1 not marked down at end of run")
	}
	if trace.DegradedIntervals != 3 {
		t.Fatalf("degraded intervals %d, want 3", trace.DegradedIntervals)
	}
}

// TestClusterFailFastAborts: the default policy turns the injected
// fault into a typed, latched error at the scheduled interval, and
// the failed session refuses checkpoints.
func TestClusterFailFastAborts(t *testing.T) {
	s, err := OpenCluster(chaosConfig(21, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, serr := s.Step(context.Background()); serr != nil {
		t.Fatalf("interval before the fault: %v", serr)
	}
	_, serr := s.Step(context.Background())
	if !errors.Is(serr, ErrCellFailure) {
		t.Fatalf("want ErrCellFailure at the scheduled interval, got %v", serr)
	}
	if _, again := s.Step(context.Background()); !errors.Is(again, ErrCellFailure) {
		t.Fatalf("failure not latched: %v", again)
	}
	if cerr := s.Checkpoint(io.Discard); !errors.Is(cerr, ErrCellFailure) {
		t.Fatalf("checkpoint of failed session: want the cell failure, got %v", cerr)
	}
}

// TestClusterDefaultUnchangedByFaultFreeConfig: a config with no
// faults behaves identically through the failure-aware code path —
// the degraded-mode plumbing costs nothing when nothing fails.
func TestClusterDefaultUnchangedByFaultFreeConfig(t *testing.T) {
	ref, err := RunCluster(clusterTestConfig(7, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	got := runDegraded(t, clusterTestConfig(7, 2, 0), CellDegradeWithRevival)
	if !reflect.DeepEqual(got.Records, ref.Records) {
		t.Fatal("fault-free run diverged under a degrade policy")
	}
	if got.CellFailures != 0 || got.EvacuatedTwins != 0 || got.DegradedIntervals != 0 {
		t.Fatalf("phantom failure stats: %+v", got)
	}
}

// TestClusterFaultConfigValidation: malformed fault schedules are
// rejected at Open time with ErrConfig.
func TestClusterFaultConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fault CellFault
	}{
		{"cell out of range", CellFault{Cell: 9, FailAt: 1}},
		{"negative cell", CellFault{Cell: -1, FailAt: 1}},
		{"failAt past end", CellFault{Cell: 1, FailAt: 99}},
		{"reviveAt not after failAt", CellFault{Cell: 1, FailAt: 2, ReviveAt: 2}},
		{"reviveAt past end", CellFault{Cell: 1, FailAt: 1, ReviveAt: 99}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := clusterTestConfig(3, 1, 0)
			cfg.Faults = []CellFault{tc.fault}
			if _, err := OpenCluster(cfg); err == nil {
				t.Fatal("invalid fault accepted")
			}
		})
	}
	t.Run("duplicate cell", func(t *testing.T) {
		cfg := clusterTestConfig(3, 1, 0)
		cfg.Faults = []CellFault{{Cell: 1, FailAt: 1}, {Cell: 1, FailAt: 2}}
		if _, err := OpenCluster(cfg); err == nil {
			t.Fatal("two faults on one cell accepted")
		}
	})
}

// TestClusterDegradedCheckpointResume: checkpoint/resume while
// degraded is exact — for every boundary k, including the boundaries
// where cell 1 is quarantined, the resumed run's trace suffix and
// final checkpoint are bit-identical to the uninterrupted run's.
func TestClusterDegradedCheckpointResume(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := chaosConfig(23, 4, shards)
			open := func(opts ...SessionOption) (Session, error) {
				return OpenCluster(cfg, append(opts, WithCellFailurePolicy(CellDegradeWithRevival))...)
			}
			resume := func(r io.Reader, opts ...SessionOption) (Session, error) {
				return ResumeCluster(cfg, r, append(opts, WithCellFailurePolicy(CellDegradeWithRevival))...)
			}
			full, perInterval, finalCkpt := referenceRun(t, open)
			for k := 0; k <= len(perInterval); k++ {
				var pre bytes.Buffer
				s, err := open(WithSink(NewNDJSONSink(&pre)))
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < k; step++ {
					if _, serr := s.Step(context.Background()); serr != nil {
						t.Fatalf("boundary %d step %d: %v", k, step, serr)
					}
				}
				var ckpt bytes.Buffer
				if cerr := s.Checkpoint(&ckpt); cerr != nil {
					t.Fatalf("checkpoint at boundary %d: %v", k, cerr)
				}
				s.Close()

				var post bytes.Buffer
				rs, err := resume(bytes.NewReader(ckpt.Bytes()), WithSink(NewNDJSONSink(&post)))
				if err != nil {
					t.Fatalf("resume at boundary %d: %v", k, err)
				}
				for !rs.Done() {
					if _, serr := rs.Step(context.Background()); serr != nil {
						t.Fatalf("resumed step at boundary %d: %v", k, serr)
					}
				}
				var reCkpt bytes.Buffer
				if cerr := rs.Checkpoint(&reCkpt); cerr != nil {
					t.Fatal(cerr)
				}
				rs.Close()
				if pre.String()+post.String() != full {
					t.Fatalf("boundary %d: degraded resume diverged from uninterrupted run", k)
				}
				if !bytes.Equal(reCkpt.Bytes(), finalCkpt) {
					t.Fatalf("boundary %d: final checkpoint of degraded resume diverged", k)
				}
			}
		})
	}
}

// TestClusterResumePolicyMismatch: a checkpoint taken under one
// cell-failure policy cannot be resumed under another — the policy
// shapes the engine's future, so a silent switch would fork the
// trace.
func TestClusterResumePolicyMismatch(t *testing.T) {
	cfg := chaosConfig(23, 2, 0)
	s, err := OpenCluster(cfg, WithCellFailurePolicy(CellDegradeWithRevival))
	if err != nil {
		t.Fatal(err)
	}
	// Step past the failure so the checkpoint carries live quarantine
	// state, then capture it.
	for i := 0; i < 2; i++ {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	var ckpt bytes.Buffer
	if cerr := s.Checkpoint(&ckpt); cerr != nil {
		t.Fatal(cerr)
	}
	s.Close()

	if _, rerr := ResumeCluster(cfg, bytes.NewReader(ckpt.Bytes())); !errors.Is(rerr, ErrCheckpointConfig) {
		t.Fatalf("resume under default fail-fast: want ErrCheckpointConfig, got %v", rerr)
	}
	if _, rerr := ResumeCluster(cfg, bytes.NewReader(ckpt.Bytes()),
		WithCellFailurePolicy(CellDegrade)); !errors.Is(rerr, ErrCheckpointConfig) {
		t.Fatalf("resume under Degrade: want ErrCheckpointConfig, got %v", rerr)
	}
	rs, rerr := ResumeCluster(cfg, bytes.NewReader(ckpt.Bytes()),
		WithCellFailurePolicy(CellDegradeWithRevival))
	if rerr != nil {
		t.Fatalf("resume under matching policy: %v", rerr)
	}
	rs.Close()
}
