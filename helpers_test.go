package dtmsvs

import (
	"testing"

	"dtmsvs/internal/udt"
	"dtmsvs/internal/video"
)

// benchTwins builds a two-cluster synthetic twin population for the
// grouping benches and tests.
func benchTwins(tb testing.TB) []*udt.Twin {
	tb.Helper()
	const n = 24
	twins := make([]*udt.Twin, n)
	for i := range twins {
		tw, err := udt.NewTwin(i, udt.Config{
			ChannelEvery: 1, LocationEvery: 1, WatchEvery: 1, PreferenceEvery: 1,
		})
		if err != nil {
			tb.Fatal(err)
		}
		clusterA := i < n/2
		for tick := 0; tick < 32; tick++ {
			tw.Tick()
			if clusterA {
				if _, cerr := tw.CollectChannel(12 + tick%4); cerr != nil {
					tb.Fatal(cerr)
				}
				tw.CollectLocation(200+float64(tick), 150)
				if _, verr := tw.CollectView(video.News, 35, 0.85, false); verr != nil {
					tb.Fatal(verr)
				}
			} else {
				if _, cerr := tw.CollectChannel(1 + tick%4); cerr != nil {
					tb.Fatal(cerr)
				}
				tw.CollectLocation(1800-8*float64(tick), 1700)
				if _, verr := tw.CollectView(video.Game, 4, 0.1, true); verr != nil {
					tb.Fatal(verr)
				}
			}
		}
		twins[i] = tw
	}
	return twins
}
