package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"dtmsvs/internal/cluster"
	"dtmsvs/internal/faultinject"
)

// TestMain lets the test binary double as the distributed worker:
// WithWorkerProcesses() re-execs this binary, and MaybeWorker turns
// the child into a frame worker before the test framework starts.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// distTestConfig needs NumBS >= 4 so the worker matrix {1,2,4} has
// cells to own; otherwise it mirrors sessionTestConfig's scale.
func distTestConfig(seed int64, workers int) ClusterConfig {
	return ClusterConfig{Sim: Config{
		Seed:             seed,
		NumUsers:         32,
		NumBS:            4,
		NumIntervals:     4,
		TicksPerInterval: 6,
		WarmupIntervals:  1,
		RegroupEvery:     2,
		CompressorEpochs: 2,
		AgentEpisodes:    10,
		ChurnPerInterval: 0.1,
		PrefetchDepth:    -1,
		Parallelism:      workers,
	}}
}

// fastHeartbeat shrinks the failure-detection timescales so chaos
// tests run in milliseconds (the session-option analog of the coord
// package's fastFailure helper).
func fastHeartbeat() []SessionOption {
	return []SessionOption{
		WithWorkerHeartbeat(10*time.Millisecond, 5),
		WithWorkerRestartPolicy(10, 2*time.Millisecond),
	}
}

// driveDist steps a distributed session to completion and returns its
// NDJSON stream plus a final session checkpoint.
func driveDist(t *testing.T, cfg ClusterConfig, workers int, opts ...SessionOption) (*DistSession, string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	s, err := OpenDistributed(cfg, workers, append(opts, WithSink(NewNDJSONSink(&buf)))...)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			s.Close()
			t.Fatal(serr)
		}
	}
	var ckpt bytes.Buffer
	if err := s.Checkpoint(&ckpt); err != nil {
		s.Close()
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return s, buf.String(), ckpt.Bytes()
}

// TestDistributedMatchesCluster is the root-level bit-identity
// contract: for every worker count and intra-worker parallelism, the
// distributed session streams byte-identical NDJSON to the
// single-process cluster session and reports identical run stats.
func TestDistributedMatchesCluster(t *testing.T) {
	const seed = 23
	want, _ := ndjsonRun(t, func(opts ...SessionOption) (Session, error) {
		return OpenCluster(distTestConfig(seed, 1), opts...)
	})
	ref, err := cluster.Run(distTestConfig(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers=%d/par=%d", workers, par), func(t *testing.T) {
				s, stream, _ := driveDist(t, distTestConfig(seed, par), workers)
				if stream != want {
					t.Fatal("distributed NDJSON diverged from cluster session")
				}
				tr := s.Trace()
				if !reflect.DeepEqual(tr.Cells, ref.Cells) {
					t.Fatalf("cell stats diverged:\n got %+v\nwant %+v", tr.Cells, ref.Cells)
				}
				if tr.Handovers != ref.Handovers || tr.ChurnedUsers != ref.ChurnedUsers ||
					tr.CacheHitRate != ref.CacheHitRate {
					t.Fatal("run stats diverged")
				}
				if s.WorkerRestarts() != 0 || s.HeartbeatMisses() != 0 {
					t.Fatalf("healthy run recovered: %d restarts, %d misses",
						s.WorkerRestarts(), s.HeartbeatMisses())
				}
			})
		}
	}
}

// TestDistributedTraceRetained: without a sink the distributed session
// retains the merged records, matching the cluster engine's trace.
func TestDistributedTraceRetained(t *testing.T) {
	const seed = 29
	ref, err := cluster.Run(distTestConfig(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenDistributed(distTestConfig(seed, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	if tr := s.Trace(); !reflect.DeepEqual(tr.Records, ref.Records) {
		t.Fatalf("retained records diverged (%d vs %d rows)", len(tr.Records), len(ref.Records))
	}
}

// TestDistributedChaosRecovery is the root chaos contract: kill, hang
// and garbage faults are each recovered from the last acked boundary,
// the NDJSON stream and the final session checkpoint stay
// byte-identical to the unfaulted run, and the recovery shows up in
// the counters and the metrics registry.
func TestDistributedChaosRecovery(t *testing.T) {
	const seed = 59
	cfg := distTestConfig(seed, 2)
	_, cleanStream, cleanCkpt := driveDist(t, cfg, 2)

	reg := NewMetricsRegistry()
	opts := append(fastHeartbeat(),
		WithProcFaults(150*time.Millisecond,
			ProcFault{Worker: 0, Interval: 1, Kind: ProcKill},
			ProcFault{Worker: 1, Interval: 2, Kind: ProcHang},
			ProcFault{Worker: 0, Interval: 3, Kind: ProcGarbage},
		),
		WithMetrics(reg),
	)
	s, stream, ckpt := driveDist(t, cfg, 2, opts...)
	if stream != cleanStream {
		t.Fatal("chaos run NDJSON diverged from clean run")
	}
	if !bytes.Equal(ckpt, cleanCkpt) {
		t.Fatal("chaos run final checkpoint diverged from clean run")
	}
	if s.WorkerRestarts() < 3 {
		t.Fatalf("restarts %d, want at least one per fault", s.WorkerRestarts())
	}
	if s.HeartbeatMisses() < 1 {
		t.Fatalf("hang never tripped the heartbeat deadline (misses %d)", s.HeartbeatMisses())
	}

	snap := reg.Snapshot()
	for name, min := range map[string]float64{
		"dtmsvs_worker_restarts_total": 3,
		"dtmsvs_heartbeat_miss_total":  1,
		"dtmsvs_coord_tx_bytes_total":  1,
		"dtmsvs_coord_rx_bytes_total":  1,
	} {
		fam := snap.Family(name)
		if fam == nil {
			t.Errorf("metric %s missing from registry", name)
			continue
		}
		total := 0.0
		for _, ser := range fam.Series {
			total += ser.Value
		}
		if total < min {
			t.Errorf("metric %s = %v, want >= %v", name, total, min)
		}
	}
	stages := snap.Family("dtmsvs_stage_duration_seconds")
	if stages == nil {
		t.Fatal("stage timings missing from registry")
	}
	boundary := false
	for _, ser := range stages.Series {
		if ser.Label("stage") == "coord_boundary" && ser.Count > 0 {
			boundary = true
		}
	}
	if !boundary {
		t.Error("coord_boundary stage never observed a duration")
	}
}

// TestDistributedProcPlanFault: the seed-derived chaos plan drives
// recovery through the session options exactly like hand-placed
// faults.
func TestDistributedProcPlanFault(t *testing.T) {
	const seed = 43
	cfg := distTestConfig(seed, 1)
	_, cleanStream, _ := driveDist(t, cfg, 2)
	fault := ProcFaultPlan(seed, 2, cfg.Sim.NumIntervals)
	opts := append(fastHeartbeat(), WithProcFaults(150*time.Millisecond, fault))
	s, stream, _ := driveDist(t, cfg, 2, opts...)
	if stream != cleanStream {
		t.Fatalf("planned fault %+v broke bit-identity", fault)
	}
	if s.WorkerRestarts() == 0 {
		t.Fatalf("planned fault %+v caused no restart", fault)
	}
}

// TestDistributedWorkerFailed: with restarts forbidden and no
// adoption, a worker loss surfaces as ErrWorkerFailed from Step and
// permanently fails the session.
func TestDistributedWorkerFailed(t *testing.T) {
	cfg := distTestConfig(17, 1)
	s, err := OpenDistributed(cfg, 2,
		WithWorkerRestartPolicy(-1, 0),
		WithWorkerHeartbeat(10*time.Millisecond, 5),
		WithProcFaults(0, ProcFault{Worker: 1, Interval: 0, Kind: ProcKill}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var stepErr error
	for !s.Done() {
		if _, stepErr = s.Step(context.Background()); stepErr != nil {
			break
		}
	}
	if !errors.Is(stepErr, ErrWorkerFailed) {
		t.Fatalf("exhausted budget: %v", stepErr)
	}
}

// TestDistributedAdoption: with adoption enabled, an unrestartable
// worker's cells move in-process and the stream stays bit-identical.
func TestDistributedAdoption(t *testing.T) {
	const seed = 37
	cfg := distTestConfig(seed, 1)
	_, cleanStream, _ := driveDist(t, cfg, 2)
	s, stream, _ := driveDist(t, cfg, 2,
		WithWorkerRestartPolicy(-1, 0),
		WithWorkerHeartbeat(10*time.Millisecond, 5),
		WithWorkerAdoption(),
		WithProcFaults(0, ProcFault{Worker: 1, Interval: 1, Kind: ProcKill}),
	)
	if stream != cleanStream {
		t.Fatal("adopted run NDJSON diverged")
	}
	if s.WorkerAdoptions() != 1 {
		t.Fatalf("adoptions %d want 1", s.WorkerAdoptions())
	}
}

// TestDistributedCheckpointResume: a distributed session checkpointed
// mid-run resumes over the wire — fresh supervisor, fresh workers —
// and finishes with a stream suffix, stats and final checkpoint all
// byte-identical to the uninterrupted run.
func TestDistributedCheckpointResume(t *testing.T) {
	const seed = 53
	cfg := distTestConfig(seed, 2)
	full, fullStream, fullCkpt := driveDist(t, cfg, 2)

	var buf bytes.Buffer
	a, err := OpenDistributed(cfg, 2, WithSink(NewNDJSONSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, serr := a.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	var mid bytes.Buffer
	if err := a.Checkpoint(&mid); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := ResumeDistributed(cfg, 2, bytes.NewReader(mid.Bytes()), WithSink(NewNDJSONSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	for !b.Done() {
		if _, serr := b.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	var final bytes.Buffer
	if err := b.Checkpoint(&final); err != nil {
		t.Fatal(err)
	}
	if buf.String() != fullStream {
		t.Fatal("resumed stream diverged from uninterrupted run")
	}
	if !bytes.Equal(final.Bytes(), fullCkpt) {
		t.Fatal("resumed final checkpoint diverged")
	}
	if !reflect.DeepEqual(b.Trace().Cells, full.Trace().Cells) {
		t.Fatal("resumed cell stats diverged")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Wrong worker count is a config mismatch, not silent corruption.
	if _, err := ResumeDistributed(cfg, 4, bytes.NewReader(mid.Bytes())); !errors.Is(err, ErrCheckpointConfig) {
		t.Fatalf("resume with 4 workers of a 2-worker checkpoint: %v", err)
	}
}

// TestDistributedSinkRetryKeepsWorkersAlive is the sink-retry /
// heartbeat interplay contract: a transient sink failure stalls the
// session in WithSinkRetry backoff for longer than the heartbeat miss
// deadline, and the supervisor must NOT misread that session-side
// stall as a dead worker — no restarts, no heartbeat misses, and the
// delivered stream is still byte-identical.
func TestDistributedSinkRetryKeepsWorkersAlive(t *testing.T) {
	const seed = 61
	cfg := distTestConfig(seed, 1)
	_, cleanStream, _ := driveDist(t, cfg, 2)

	var buf bytes.Buffer
	flaky := faultinject.Wrap[TraceRecord](NewNDJSONSink(&buf),
		faultinject.Fault{Mode: faultinject.FailWrite, N: 3, Transient: true},
		faultinject.Fault{Mode: faultinject.FailFlush, N: 2, Transient: true},
	)
	s, err := OpenDistributed(cfg, 2,
		WithSink(flaky),
		// Each retry sleeps 120ms — far past the 10ms x 5 liveness
		// deadline the workers are being watched with.
		WithSinkRetry(3, 120*time.Millisecond),
		WithWorkerHeartbeat(10*time.Millisecond, 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatal(serr)
		}
	}
	if buf.String() != cleanStream {
		t.Fatal("stream diverged after transient sink faults")
	}
	if s.WorkerRestarts() != 0 || s.HeartbeatMisses() != 0 {
		t.Fatalf("sink stall misread as worker failure: %d restarts, %d misses",
			s.WorkerRestarts(), s.HeartbeatMisses())
	}
	if flaky.Writes() < 3 || flaky.Flushes() < 2 {
		t.Fatalf("faults never fired (%d writes, %d flushes)", flaky.Writes(), flaky.Flushes())
	}
}

// TestDistributedProcessWorkers runs real child processes (this test
// binary re-exec'ed via TestMain/MaybeWorker) and real SIGKILLs. The
// default run covers a clean pass and one kill per worker count; the
// CI chaos job sets DTMSVS_CHAOS=1 to sweep SIGKILL at every interval
// boundary x workers {1,2,4}.
func TestDistributedProcessWorkers(t *testing.T) {
	const seed = 67
	cfg := distTestConfig(seed, 1)
	_, cleanStream, cleanCkpt := driveDist(t, cfg, 2)
	_, procStream, _ := driveDist(t, cfg, 2, WithWorkerProcesses())
	if procStream != cleanStream {
		t.Fatal("process-transport stream diverged from in-process run")
	}

	workerCounts := []int{2}
	intervals := []int{1}
	if os.Getenv("DTMSVS_CHAOS") != "" {
		workerCounts = []int{1, 2, 4}
		intervals = []int{0, 1, 2, 3}
	}
	for _, workers := range workerCounts {
		wantStream, wantCkpt := cleanStream, cleanCkpt
		if workers != 2 {
			_, wantStream, wantCkpt = driveDist(t, cfg, workers)
		}
		for _, at := range intervals {
			t.Run(fmt.Sprintf("sigkill/workers=%d/interval=%d", workers, at), func(t *testing.T) {
				// SIGKILL is detected by pipe EOF, not by heartbeats, so
				// the default liveness deadline stays: race-instrumented
				// child processes can take tens of milliseconds to exec,
				// and a millisecond-scale heartbeat budget would misread
				// that cold start as death.
				opts := []SessionOption{
					WithWorkerRestartPolicy(10, 2*time.Millisecond),
					WithWorkerProcesses(),
					WithProcFaults(0, ProcFault{Worker: workers - 1, Interval: at, Kind: ProcKill}),
				}
				s, stream, ckpt := driveDist(t, cfg, workers, opts...)
				if stream != wantStream {
					t.Fatal("SIGKILL recovery broke bit-identity")
				}
				if !bytes.Equal(ckpt, wantCkpt) {
					t.Fatal("SIGKILL recovery broke checkpoint identity")
				}
				if s.WorkerRestarts() == 0 {
					t.Fatal("SIGKILL caused no restart")
				}
			})
		}
	}
}
