package main

import (
	"fmt"
	"io"
	"sort"

	"dtmsvs"
)

// reportTrace renders a markdown summary of a stored trace file: one
// row per scheduling interval with grouped demand and prediction
// accuracy, plus run totals. The file may be in any trace format this
// repo writes (json, ndjson, csv, bin) — detection is automatic.
func reportTrace(w io.Writer, path string) error {
	recs, err := dtmsvs.ReadTraceFile(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace %s holds no records", path)
	}
	type row struct {
		groups            int
		predRBs, actRBs   float64
		absRBs            float64
		predBits, actBits float64
		cells             map[int]bool
	}
	byInterval := map[int]*row{}
	for _, r := range recs {
		iv := byInterval[r.Interval]
		if iv == nil {
			iv = &row{cells: map[int]bool{}}
			byInterval[r.Interval] = iv
		}
		iv.groups++
		iv.predRBs += r.PredictedRBs
		iv.actRBs += r.ActualRBs
		d := r.PredictedRBs - r.ActualRBs
		if d < 0 {
			d = -d
		}
		iv.absRBs += d
		iv.predBits += r.PredictedBits
		iv.actBits += r.ActualBits
		if r.BS >= 0 {
			iv.cells[r.BS] = true
		}
	}
	intervals := make([]int, 0, len(byInterval))
	for k := range byInterval {
		intervals = append(intervals, k)
	}
	sort.Ints(intervals)

	fmt.Fprintf(w, "# Trace summary: %s\n\n%d records over %d intervals.\n\n", path, len(recs), len(intervals))
	fmt.Fprintln(w, "| interval | groups | cells | predicted RBs | actual RBs | radio accuracy |")
	fmt.Fprintln(w, "|---:|---:|---:|---:|---:|---:|")
	var totGroups int
	var totPred, totAct, totAbs float64
	for _, k := range intervals {
		iv := byInterval[k]
		acc := 1.0
		if iv.actRBs > 0 {
			acc = 1 - iv.absRBs/iv.actRBs
			if acc < 0 {
				acc = 0
			}
		}
		fmt.Fprintf(w, "| %d | %d | %d | %.1f | %.1f | %.2f%% |\n",
			k, iv.groups, len(iv.cells), iv.predRBs, iv.actRBs, acc*100)
		totGroups += iv.groups
		totPred += iv.predRBs
		totAct += iv.actRBs
		totAbs += iv.absRBs
	}
	acc := 1.0
	if totAct > 0 {
		acc = 1 - totAbs/totAct
		if acc < 0 {
			acc = 0
		}
	}
	fmt.Fprintf(w, "\nTotals: %d group-intervals, predicted %.1f RBs vs actual %.1f RBs, radio accuracy %.2f%%.\n",
		totGroups, totPred, totAct, acc*100)
	return nil
}
