// dtreport -timings: render a metrics snapshot written by
// `dtsim -metrics-out` (or any obs.Registry WriteJSON dump) as
// markdown tables — per-stage/per-cell wall-clock timings, edge
// cache effectiveness, and the remaining counters and gauges.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dtmsvs/internal/cli"
	"dtmsvs/internal/obs"
)

// reportTimings reads the snapshot at path and writes the timing
// report to w.
func reportTimings(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	fmt.Fprintf(w, "# dtmsvs timing report\n\nSnapshot: %s.\n\n", path)
	if err := timingsStageTable(w, snap); err != nil {
		return err
	}
	if err := timingsCacheTable(w, snap); err != nil {
		return err
	}
	if err := timingsFailureTable(w, snap); err != nil {
		return err
	}
	return timingsCounterTable(w, snap)
}

// timingsFailureTable renders the cluster failure-model counters as
// their own section when the run saw injected cell failures; healthy
// snapshots skip it (the zero-valued families still appear in the
// generic counter table).
func timingsFailureTable(w io.Writer, snap *obs.Snapshot) error {
	failures := snap.Family("dtmsvs_cell_failures_total")
	if failures == nil || len(failures.Series) == 0 || failures.Series[0].Value == 0 {
		return nil
	}
	fmt.Fprintf(w, "## Failure and degradation\n\n")
	t, err := cli.NewTable("metric", "value")
	if err != nil {
		return err
	}
	for _, name := range []string{
		"dtmsvs_cell_failures_total",
		"dtmsvs_cell_revivals_total",
		"dtmsvs_evacuated_twins_total",
		"dtmsvs_degraded_intervals_total",
		"dtmsvs_cells_down",
	} {
		fam := snap.Family(name)
		if fam == nil || len(fam.Series) == 0 {
			continue
		}
		if err := t.AddRow(name, strconv.FormatFloat(fam.Series[0].Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// timingsStageTable renders the stage-duration histogram family:
// one row per (stage, cell) series with count, total and mean.
func timingsStageTable(w io.Writer, snap *obs.Snapshot) error {
	fam := snap.Family(obs.StageFamily)
	if fam == nil || len(fam.Series) == 0 {
		fmt.Fprintf(w, "No stage timings in snapshot (was the registry mounted?).\n\n")
		return nil
	}
	fmt.Fprintf(w, "## Stage timings\n\n")
	t, err := cli.NewTable("stage", "cell", "count", "total", "mean")
	if err != nil {
		return err
	}
	// Group by stage (prologue first, then interval phases, then the
	// rest alphabetically), cells numerically within a stage.
	series := append([]obs.Series(nil), fam.Series...)
	sort.SliceStable(series, func(i, j int) bool {
		si, sj := series[i].Label("stage"), series[j].Label("stage")
		if si != sj {
			return stageRank(si) < stageRank(sj) || (stageRank(si) == stageRank(sj) && si < sj)
		}
		ci, _ := strconv.Atoi(series[i].Label("cell"))
		cj, _ := strconv.Atoi(series[j].Label("cell"))
		return ci < cj
	})
	for _, s := range series {
		cell := s.Label("cell")
		if cell == "" {
			cell = "-"
		}
		total := time.Duration(s.Sum * float64(time.Second))
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = total / time.Duration(s.Count)
		}
		if err := t.AddRow(s.Label("stage"), cell, s.Count,
			formatDur(total), formatDur(mean)); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// stageRank orders stage names for display: the step envelope, the
// prologue phases, then per-interval phases, then everything else.
func stageRank(stage string) int {
	switch {
	case stage == "step":
		return 0
	case strings.HasPrefix(stage, "prologue/"):
		return 1
	case strings.HasPrefix(stage, "interval/"):
		return 2
	}
	return 3
}

// timingsCacheTable renders per-cell edge cache effectiveness.
func timingsCacheTable(w io.Writer, snap *obs.Snapshot) error {
	hits := snap.Family("dtmsvs_edge_cache_hits_total")
	if hits == nil || len(hits.Series) == 0 {
		return nil
	}
	misses := snap.Family("dtmsvs_edge_cache_misses_total")
	evics := snap.Family("dtmsvs_edge_cache_evictions_total")
	fmt.Fprintf(w, "## Edge cache\n\n")
	t, err := cli.NewTable("cell", "hits", "misses", "evictions", "hit rate")
	if err != nil {
		return err
	}
	for _, s := range hits.Series {
		cell := s.Label("cell")
		h := s.Value
		m := seriesValue(misses, "cell", cell)
		e := seriesValue(evics, "cell", cell)
		rate := "n/a"
		if h+m > 0 {
			rate = cli.Percent(h / (h + m))
		}
		label := cell
		if label == "" {
			label = "-"
		}
		if err := t.AddRow(label, uint64(h), uint64(m), uint64(e), rate); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// seriesValue finds the series in fam whose label `name` equals
// `value` and returns its value (0 when absent).
func seriesValue(fam *obs.Family, name, value string) float64 {
	if fam == nil {
		return 0
	}
	for _, s := range fam.Series {
		if s.Label(name) == value {
			return s.Value
		}
	}
	return 0
}

// timingsCounterTable renders the non-histogram families.
func timingsCounterTable(w io.Writer, snap *obs.Snapshot) error {
	fmt.Fprintf(w, "## Counters and gauges\n\n")
	t, err := cli.NewTable("metric", "labels", "value")
	if err != nil {
		return err
	}
	for _, fam := range snap.Families {
		if fam.Kind == "histogram" || strings.HasPrefix(fam.Name, "dtmsvs_edge_cache_") {
			continue
		}
		for _, s := range fam.Series {
			labels := make([]string, 0, len(s.Labels))
			for _, l := range s.Labels {
				labels = append(labels, l.Name+"="+l.Value)
			}
			lab := strings.Join(labels, ",")
			if lab == "" {
				lab = "-"
			}
			if err := t.AddRow(fam.Name, lab, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return t.WriteMarkdown(w)
}

// formatDur renders a duration rounded for table display.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.Round(100 * time.Nanosecond).String()
}
