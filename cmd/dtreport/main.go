// Command dtreport runs the full evaluation suite (Fig. 3 plus
// experiments E1–E4, E7–E10) on one scenario and writes a
// self-contained markdown report — the tool behind EXPERIMENTS.md.
//
// Usage:
//
//	dtreport -users 100 -intervals 24 -seed 42 > report.md
//
// The default scenario is paper-scale and takes a few minutes; use
// -users 60 -intervals 10 for a quick pass.
//
// With -timings FILE the evaluation suite is skipped entirely and the
// tool instead renders a metrics snapshot (written by `dtsim
// -metrics-out FILE`) as markdown: per-stage/per-cell wall-clock
// timings, edge cache effectiveness, and the run's counters.
//
// With -trace FILE the tool renders a markdown summary of a stored
// trace instead — per-interval demand and accuracy tables built from
// the records. The trace format (json, ndjson, csv or the binary
// columnar bin) is auto-detected from the file's first bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"dtmsvs"
	"dtmsvs/internal/cli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dtreport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		users     = flag.Int("users", 100, "number of users")
		bs        = flag.Int("bs", 4, "number of base stations")
		intervals = flag.Int("intervals", 24, "reservation intervals")
		seed      = flag.Int64("seed", 42, "random seed")
		par       = flag.Int("parallel", 0, "simulation worker goroutines (0 = all cores; results are identical for any value)")
		out       = flag.String("out", "", "output file (default stdout)")
		timings   = flag.String("timings", "", "render this metrics snapshot (from dtsim -metrics-out) instead of running the evaluation suite")
		tracePath = flag.String("trace", "", "render a markdown summary of this trace file (any format: json, ndjson, csv, bin) instead of running the evaluation suite")
	)
	flag.Parse()

	cfg := dtmsvs.DefaultConfig(*seed)
	cfg.NumUsers = *users
	cfg.NumBS = *bs
	cfg.NumIntervals = *intervals
	cfg.Parallelism = *par

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := io.Writer(os.Stdout)
	if *out != "" && *out != "-" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}

	if *timings != "" {
		return reportTimings(w, *timings)
	}
	if *tracePath != "" {
		return reportTrace(w, *tracePath)
	}

	fmt.Fprintf(w, "# dtmsvs evaluation report\n\nScenario: %d users, %d BSs, %d intervals, seed %d.\n\n",
		*users, cfg.NumBS, *intervals, *seed)

	err := func() error {
		if err := reportFig3(ctx, w, cfg); err != nil {
			return err
		}
		if err := reportPredictors(ctx, w, cfg); err != nil {
			return err
		}
		if err := reportGrouping(ctx, w, cfg); err != nil {
			return err
		}
		if err := reportReservation(ctx, w, cfg); err != nil {
			return err
		}
		if err := reportWaste(ctx, w, cfg); err != nil {
			return err
		}
		if err := reportQoE(ctx, w, cfg); err != nil {
			return err
		}
		return reportChurn(ctx, w, cfg)
	}()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dtreport: interrupted; report truncated")
		return nil
	}
	return err
}

func reportFig3(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	s, err := dtmsvs.Open(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(ctx); err != nil {
			return err
		}
	}
	trace := s.Trace()
	a, err := dtmsvs.Fig3aFromTrace(trace)
	if err != nil {
		return err
	}
	b, err := dtmsvs.Fig3bFromTrace(trace)
	if err != nil {
		return err
	}
	computeAcc, err := trace.ComputeAccuracy()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "## Fig. 3 reproduction\n\n")
	t, err := cli.NewTable("metric", "paper", "measured")
	if err != nil {
		return err
	}
	if err := t.AddRow("radio prediction accuracy", "95.04%", cli.Percent(b.OverallAccuracy)); err != nil {
		return err
	}
	if err := t.AddRow("computing accuracy (E1, volume)", "n/a", cli.Percent(computeAcc)); err != nil {
		return err
	}
	if err := t.AddRow("E[watch] News (group 1)", "highest", fmt.Sprintf("%.3f", a.ExpectedWatchFraction[dtmsvs.News.Index()])); err != nil {
		return err
	}
	if err := t.AddRow("E[watch] Game (group 1)", "lowest", fmt.Sprintf("%.3f", a.ExpectedWatchFraction[dtmsvs.Game.Index()])); err != nil {
		return err
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func reportPredictors(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunPredictorBaselines(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## E4 — predictor baselines\n\n")
	t, err := cli.NewTable("predictor", "radio accuracy")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := t.AddRow(r.Name, cli.Percent(r.Accuracy)); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func reportGrouping(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunGroupingAblation(ctx, cfg, []dtmsvs.GroupingVariant{
		{Name: "ddqn+cnn", UseCNN: true},
		{Name: "ddqn+raw", UseCNN: false},
		{Name: "fixed-k8", FixedK: 8, UseCNN: true},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## E2 — grouping ablation\n\n")
	t, err := cli.NewTable("variant", "groups", "silhouette", "radio accuracy")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := t.AddRow(r.Variant.Name, r.K, r.Silhouette, cli.Percent(r.RadioAccuracy)); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func reportReservation(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunReservation(ctx, cfg, 0.1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## E7 — reservation policies (10%% headroom)\n\n")
	t, err := cli.NewTable("policy", "waste", "violation rate", "utilization")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := t.AddRow(r.Policy, fmt.Sprintf("%.1f", r.Waste), cli.Percent(r.ViolationRate), cli.Percent(r.Utilization)); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func reportWaste(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunWasteVsPrefetch(ctx, cfg, []int{0, 2, 8})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## E8 — wasted traffic vs prefetch depth\n\n")
	t, err := cli.NewTable("depth", "waste share", "pred/actual waste")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := t.AddRow(r.PrefetchDepth, cli.Percent(r.WasteShare), r.AggregateRatio); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func reportQoE(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunQoEVsBudget(ctx, cfg, []int{0, 8, 3})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## E9 — QoE vs shared radio budget\n\n")
	t, err := cli.NewTable("budget (RBs)", "mean QoE", "mean bitrate (kbps)")
	if err != nil {
		return err
	}
	for _, r := range rows {
		budget := "unlimited"
		if r.RBBudget > 0 {
			budget = fmt.Sprintf("%d", r.RBBudget)
		}
		if err := t.AddRow(budget, fmt.Sprintf("%.1f", r.MeanQoE), fmt.Sprintf("%.0f", r.MeanBitrateBps/1e3)); err != nil {
			return err
		}
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func reportChurn(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunAccuracyVsChurn(ctx, cfg, []float64{0, 0.05})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## E10 — accuracy vs user churn\n\n")
	t, err := cli.NewTable("churn/interval", "radio accuracy", "group stability")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := t.AddRow(cli.Percent(r.ChurnPerInterval), cli.Percent(r.RadioAccuracy), r.MeanStability); err != nil {
			return err
		}
	}
	return t.WriteMarkdown(w)
}
