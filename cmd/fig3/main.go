// Command fig3 regenerates the paper's Fig. 3: panel (a), the
// cumulative swiping probability per video category of the
// News-dominant multicast group, and panel (b), predicted vs actual
// radio resource demand with the headline prediction accuracy
// (paper: 95.04 %). Output is an aligned text table plus optional
// CSV.
//
// Usage:
//
//	fig3 -panel a            # swiping probability CDFs
//	fig3 -panel b            # demand series + accuracy
//	fig3 -panel both -csv out.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"dtmsvs"
	"dtmsvs/internal/video"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		panel     = flag.String("panel", "both", `which panel to regenerate: "a", "b" or "both"`)
		seed      = flag.Int64("seed", 42, "random seed")
		users     = flag.Int("users", 100, "number of users")
		intervals = flag.Int("intervals", 24, "reservation intervals")
		csvPath   = flag.String("csv", "", "also write the series to this CSV file")
	)
	flag.Parse()

	cfg := dtmsvs.DefaultConfig(*seed)
	cfg.NumUsers = *users
	cfg.NumIntervals = *intervals

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := dtmsvs.Open(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(ctx); err != nil {
			return err
		}
	}
	trace := s.Trace()

	var csvRows [][]string
	if *panel == "a" || *panel == "both" {
		a, aerr := dtmsvs.Fig3aFromTrace(trace)
		if aerr != nil {
			return aerr
		}
		printPanelA(a)
		csvRows = append(csvRows, panelACSV(a)...)
	}
	if *panel == "b" || *panel == "both" {
		b, berr := dtmsvs.Fig3bFromTrace(trace)
		if berr != nil {
			return berr
		}
		printPanelB(b)
		csvRows = append(csvRows, panelBCSV(b)...)
	}
	if *csvPath != "" {
		f, ferr := os.Create(*csvPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if werr := w.WriteAll(csvRows); werr != nil {
			return werr
		}
	}
	return nil
}

func printPanelA(a *dtmsvs.Fig3aResult) {
	fmt.Printf("Fig. 3(a) — cumulative swiping probability, multicast group %d\n", a.GroupID)
	fmt.Printf("%-10s", "watchfrac")
	for _, c := range video.AllCategories() {
		fmt.Printf("%10s", c)
	}
	fmt.Println()
	bins := len(a.CDF[0])
	for i := 0; i < bins; i++ {
		fmt.Printf("%-10.2f", float64(i+1)/float64(bins))
		for c := range a.CDF {
			fmt.Printf("%10.3f", a.CDF[c][i])
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "E[watch]")
	for c := range a.ExpectedWatchFraction {
		fmt.Printf("%10.3f", a.ExpectedWatchFraction[c])
	}
	fmt.Println()
	fmt.Println()
}

func panelACSV(a *dtmsvs.Fig3aResult) [][]string {
	rows := [][]string{{"panel", "watch_fraction", "news", "sports", "music", "comedy", "game"}}
	bins := len(a.CDF[0])
	for i := 0; i < bins; i++ {
		row := []string{"a", strconv.FormatFloat(float64(i+1)/float64(bins), 'f', 3, 64)}
		for c := range a.CDF {
			row = append(row, strconv.FormatFloat(a.CDF[c][i], 'f', 5, 64))
		}
		rows = append(rows, row)
	}
	return rows
}

func printPanelB(b *dtmsvs.Fig3bResult) {
	fmt.Printf("Fig. 3(b) — radio resource demand, multicast group %d\n", b.GroupID)
	fmt.Printf("%-10s%12s%12s\n", "interval", "predicted", "actual")
	for i := range b.Predicted {
		fmt.Printf("%-10d%12.2f%12.2f\n", i, b.Predicted[i], b.Actual[i])
	}
	fmt.Printf("\ngroup prediction accuracy:   %.2f%%\n", b.Accuracy*100)
	fmt.Printf("overall prediction accuracy: %.2f%%  (paper reports 95.04%%)\n", b.OverallAccuracy*100)
}

func panelBCSV(b *dtmsvs.Fig3bResult) [][]string {
	rows := [][]string{{"panel", "interval", "predicted_rbs", "actual_rbs"}}
	for i := range b.Predicted {
		rows = append(rows, []string{
			"b", strconv.Itoa(i),
			strconv.FormatFloat(b.Predicted[i], 'f', 4, 64),
			strconv.FormatFloat(b.Actual[i], 'f', 4, 64),
		})
	}
	return rows
}
