// Command dtsim runs a full digital-twin multicast streaming
// simulation and writes the interval-by-interval trace as JSON (and a
// human-readable summary to stderr).
//
// Usage:
//
//	dtsim -users 100 -bs 4 -intervals 24 -seed 42 -out trace.json
//	dtsim -users 50000 -bs 16 -shards -1 -intervals 12 -out city.json
//
// With -shards ≠ 0 the sharded multi-BS cluster engine runs instead
// of the monolithic one: per-BS coverage cells with private edge
// caches, concurrent shards, and deterministic twin handover between
// intervals.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtmsvs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dtsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		users     = flag.Int("users", 100, "number of users")
		bs        = flag.Int("bs", 4, "number of base stations")
		intervals = flag.Int("intervals", 24, "reservation intervals to simulate")
		seed      = flag.Int64("seed", 42, "random seed")
		fixedK    = flag.Int("fixed-k", 0, "bypass the DDQN with a fixed grouping number (0 = use DDQN)")
		noCNN     = flag.Bool("no-cnn", false, "disable the 1D-CNN compressor (raw-feature baseline)")
		budget    = flag.Int("rb-budget", 0, "shared RB budget for reservation-with-admission (0 = unlimited)")
		par       = flag.Int("parallel", 0, "simulation worker goroutines (0 = all cores; trace is identical for any value)")
		shards    = flag.Int("shards", 0, "run the sharded multi-BS cluster engine with this many shards (-1 = one per BS, 0 = monolithic engine)")
		format    = flag.String("format", "json", `trace format: "json" or "csv"`)
		out       = flag.String("out", "", "write the trace to this file (default stdout)")
	)
	flag.Parse()

	cfg := dtmsvs.DefaultConfig(*seed)
	cfg.NumUsers = *users
	cfg.NumBS = *bs
	cfg.NumIntervals = *intervals
	cfg.FixedK = *fixedK
	cfg.Grouping.UseCNN = !*noCNN
	cfg.RBBudget = *budget
	cfg.Parallelism = *par

	w := os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}

	if *shards != 0 {
		n := *shards
		if n < 0 {
			n = cfg.NumBS
		}
		trace, err := dtmsvs.RunCluster(dtmsvs.ClusterConfig{Sim: cfg, Shards: n})
		if err != nil {
			return err
		}
		radioAcc, err := trace.RadioAccuracy()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr,
			"dtsim: %d users, %d BSs, %d shards, %d intervals → handovers=%d churned=%d radio-accuracy=%.2f%% cache-hit=%.2f%%\n",
			*users, *bs, n, *intervals, trace.Handovers, trace.ChurnedUsers,
			radioAcc*100, trace.CacheHitRate*100)
		switch *format {
		case "json":
			return dtmsvs.WriteClusterTraceJSON(w, trace.Records)
		case "csv":
			return dtmsvs.WriteClusterTraceCSV(w, trace.Records)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}

	trace, err := dtmsvs.Run(cfg)
	if err != nil {
		return err
	}

	radioAcc, err := trace.RadioAccuracy()
	if err != nil {
		return err
	}
	computeAcc, err := trace.ComputeAccuracy()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"dtsim: %d users, %d BSs, %d intervals → K=%d silhouette=%.3f radio-accuracy=%.2f%% compute-accuracy=%.2f%% cache-hit=%.2f%%\n",
		*users, *bs, *intervals, trace.K, trace.Silhouette,
		radioAcc*100, computeAcc*100, trace.CacheHitRate*100)

	switch *format {
	case "json":
		return dtmsvs.WriteTraceJSON(w, trace.Records)
	case "csv":
		return dtmsvs.WriteTraceCSV(w, trace.Records)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
