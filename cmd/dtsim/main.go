// Command dtsim runs a full digital-twin multicast streaming
// simulation through the interval-stepped Session API and writes the
// trace (and a human-readable summary to stderr).
//
// Usage:
//
//	dtsim -users 100 -bs 4 -intervals 24 -seed 42 -out trace.ndjson -format ndjson
//	dtsim -users 50000 -bs 16 -shards -1 -intervals 12 -out city.ndjson -format ndjson
//
// With -shards ≠ 0 the sharded multi-BS cluster engine runs instead
// of the monolithic one: per-BS coverage cells with private edge
// caches, concurrent shards, and deterministic twin handover between
// intervals.
//
// With -workers N the cluster runs under the multi-worker supervisor:
// cells are partitioned across N workers that exchange handover twins
// at every boundary and checkpoint every interval, so a crashed
// worker is restarted and replayed without perturbing the trace. By
// default workers are goroutines; -worker-procs re-execs this binary
// as real child processes (SIGKILL-recoverable), and -worker-bin
// points at a dedicated worker binary (cmd/dtworker) instead. The
// merged trace is bit-identical to the same run without -workers.
//
//	dtsim -users 50000 -bs 16 -intervals 12 -workers 4 -worker-procs -out city.ndjson -format ndjson
//
// The "ndjson", "csv" and "bin" formats stream: records are flushed
// to -out at every interval boundary, so the process never holds the
// full trace in heap and an interrupt (Ctrl-C) leaves a well-formed
// whole-interval prefix behind. "bin" is the compact binary columnar
// format (internal/tracebin), encoded in parallel; add -bin-compress
// for per-block DEFLATE. "json" buffers the run and writes one JSON
// array at the end (the partial array is still written on interrupt).
// Any of the four decodes with dtreport/dteval or ReadTraceRecords,
// which auto-detect the format. -progress prints per-interval stats
// to stderr.
//
// Checkpointing: -checkpoint PATH writes the session's full
// deterministic state to PATH (atomically, via temp file + rename)
// after every -checkpoint-every intervals and again when an interrupt
// lands on an interval boundary. -resume PATH restores a checkpoint
// written under the identical flags and continues the run; the
// resumed trace suffix is bit-identical to what the uninterrupted run
// would have produced, so prefix + suffix reassemble the full trace.
//
//	dtsim -users 100 -intervals 24 -out part1.ndjson -format ndjson -checkpoint run.ckpt
//	dtsim -users 100 -intervals 24 -out part2.ndjson -format ndjson -resume run.ckpt
//
// Failure injection (cluster engine only): -fail-cell N -fail-at K
// quarantines cell N at the start of interval K — its twins are
// evacuated to the surviving cells and the run continues in degraded
// mode; -revive-at R brings the cell back empty and cold at interval
// R. -fault-seed S derives the whole plan (cell, failure interval,
// optional revival) deterministically from S instead. Degraded runs
// are bit-reproducible: the same flags always fail the same cell at
// the same boundary with the same evacuation.
//
//	dtsim -users 200 -bs 4 -shards -1 -intervals 12 -fail-cell 1 -fail-at 3 -revive-at 8
//	dtsim -users 200 -bs 4 -shards -1 -intervals 12 -fault-seed 7
//
// Observability: -metrics-addr :9090 serves live Prometheus metrics
// on /metrics (per-stage duration histograms, per-cell cache
// counters, sink retry counters, ...) plus net/http/pprof profiling
// under /debug/pprof/ for the duration of the run. -metrics-out
// FILE writes the final metrics snapshot as JSON; render it with
// `dtreport -timings FILE`. Metrics never change the trace: output
// is bit-identical with or without them. All progress and log
// chatter goes to stderr, so stdout stays a clean trace stream when
// -out is not set ("-out -" makes stdout explicit).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"dtmsvs"
	"dtmsvs/internal/checkpoint"
	"dtmsvs/internal/obs"
)

func main() {
	// A re-exec'ed child (dtsim -workers N -worker-procs without
	// -worker-bin) becomes a frame worker here and never reaches the
	// flag parser.
	dtmsvs.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dtsim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		users      = flag.Int("users", 100, "number of users")
		bs         = flag.Int("bs", 4, "number of base stations")
		intervals  = flag.Int("intervals", 24, "reservation intervals to simulate")
		seed       = flag.Int64("seed", 42, "random seed")
		fixedK     = flag.Int("fixed-k", 0, "bypass the DDQN with a fixed grouping number (0 = use DDQN)")
		noCNN      = flag.Bool("no-cnn", false, "disable the 1D-CNN compressor (raw-feature baseline)")
		budget     = flag.Int("rb-budget", 0, "shared RB budget for reservation-with-admission (0 = unlimited)")
		par        = flag.Int("parallel", 0, "worker goroutines for simulation fan-out and training GEMM row-blocks (0 = all cores; trace is identical for any value)")
		shards     = flag.Int("shards", 0, "run the sharded multi-BS cluster engine with this many shards (-1 = one per BS, 0 = monolithic engine)")
		format     = flag.String("format", "json", `trace format: "json" (buffered array), "ndjson", "csv" or "bin" (streamed per interval; "bin" is the binary columnar format)`)
		binGzip    = flag.Bool("bin-compress", false, `with -format bin, DEFLATE-compress each column block`)
		out        = flag.String("out", "", "write the trace to this file (default stdout)")
		progress   = flag.Bool("progress", false, "print per-interval stats to stderr")
		ckptPath   = flag.String("checkpoint", "", "write the session state to this file at interval boundaries (atomic temp-file + rename)")
		ckptEvery  = flag.Int("checkpoint-every", 1, "with -checkpoint, write every N intervals")
		resume     = flag.String("resume", "", "resume from a checkpoint file written under identical flags (trace output holds the resumed suffix)")
		metAddr    = flag.String("metrics-addr", "", `serve live Prometheus /metrics and /debug/pprof on this address (e.g. ":9090") for the duration of the run`)
		metOut     = flag.String("metrics-out", "", "write the end-of-run metrics snapshot to this file as JSON (render with dtreport -timings)")
		workersN   = flag.Int("workers", 0, "run the supervised distributed engine with this many shard workers (0 = no supervisor; implies the cluster engine)")
		workerProc = flag.Bool("worker-procs", false, "with -workers, run each worker as a child process (re-execs this binary) instead of an in-process goroutine")
		workerBin  = flag.String("worker-bin", "", "with -workers, spawn this worker binary (e.g. a dtworker build) instead of re-execing dtsim; implies -worker-procs")
		failCell   = flag.Int("fail-cell", -1, "cluster: quarantine this cell at -fail-at and evacuate its twins (-1 = no injected failure; requires -shards)")
		failAt     = flag.Int("fail-at", 0, "with -fail-cell, the 0-based interval boundary at which the cell dies")
		reviveAt   = flag.Int("revive-at", -1, "with -fail-cell, the interval boundary at which the cell returns (-1 = never)")
		faultSeed  = flag.Int64("fault-seed", 0, "derive a chaos plan (which cell fails when, and whether it revives) from this seed instead of -fail-cell/-fail-at/-revive-at (0 = none; requires -shards)")
	)
	flag.Parse()
	if *ckptEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1, got %d", *ckptEvery)
	}

	cfg := dtmsvs.DefaultConfig(*seed)
	cfg.NumUsers = *users
	cfg.NumBS = *bs
	cfg.NumIntervals = *intervals
	cfg.FixedK = *fixedK
	cfg.Grouping.UseCNN = !*noCNN
	cfg.RBBudget = *budget
	cfg.Parallelism = *par

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}

	var opts []dtmsvs.SessionOption
	var reg *dtmsvs.MetricsRegistry
	if *metAddr != "" || *metOut != "" {
		reg = dtmsvs.NewMetricsRegistry()
		opts = append(opts, dtmsvs.WithMetrics(reg))
	}
	if *metAddr != "" {
		srv, addr, serr := obs.Serve(*metAddr, reg)
		if serr != nil {
			return fmt.Errorf("metrics listener: %w", serr)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dtsim: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	if *metOut != "" {
		// The snapshot is written on every exit path — interrupted runs
		// included — so partial runs still leave their timings behind.
		defer func() {
			if werr := writeMetrics(*metOut, reg); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	var buffered *dtmsvs.BufferedSink
	switch *format {
	case "json":
		buffered = &dtmsvs.BufferedSink{}
		opts = append(opts, dtmsvs.WithSink(buffered))
	case "ndjson":
		opts = append(opts, dtmsvs.WithSink(dtmsvs.NewNDJSONSink(w)))
	case "csv":
		opts = append(opts, dtmsvs.WithSink(dtmsvs.NewCSVSink(w)))
	case "bin":
		var binOpts []dtmsvs.BinarySinkOption
		if *binGzip {
			binOpts = append(binOpts, dtmsvs.WithBinaryCompression())
		}
		sink, serr := dtmsvs.NewBinarySink(w, binOpts...)
		if serr != nil {
			return serr
		}
		// Releases the encode workers; a run that never flushed still
		// gets its self-describing header.
		defer sink.Close()
		opts = append(opts, dtmsvs.WithSink(sink))
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *progress {
		opts = append(opts, dtmsvs.WithObserver(func(rep dtmsvs.IntervalReport) {
			degraded := ""
			if rep.CellsDown > 0 {
				degraded = fmt.Sprintf(" [degraded: %d cell(s) down, %d twin(s) evacuated]",
					rep.CellsDown, rep.EvacuatedTwins)
			}
			fmt.Fprintf(os.Stderr, "dtsim: interval %d: %d groups, predicted %.1f RBs, actual %.1f RBs%s\n",
				rep.Interval, rep.Groups, rep.PredictedRBs, rep.ActualRBs, degraded)
		}))
	}
	// Accuracy folds online from the interval reports, so the summary
	// works even when a streaming sink owns the records.
	var acc dtmsvs.AccuracyTracker
	opts = append(opts, dtmsvs.WithObserver(acc.Observe))

	// Failure injection: an explicit -fail-cell schedule or a
	// seed-derived chaos plan. Either implies the degrade policy
	// (with revival when the plan schedules one); without fault flags
	// the default fail-fast policy leaves behavior unchanged.
	var faults []dtmsvs.CellFault
	switch {
	case *faultSeed != 0:
		faults = []dtmsvs.CellFault{dtmsvs.CellFaultPlan(*faultSeed, *bs, *intervals)}
	case *failCell >= 0:
		faults = []dtmsvs.CellFault{{Cell: *failCell, FailAt: *failAt, ReviveAt: *reviveAt}}
	}
	if len(faults) > 0 {
		if *shards == 0 {
			return fmt.Errorf("failure injection needs the cluster engine: set -shards")
		}
		policy := dtmsvs.CellDegrade
		if faults[0].ReviveAt >= 0 {
			policy = dtmsvs.CellDegradeWithRevival
		}
		opts = append(opts, dtmsvs.WithCellFailurePolicy(policy))
		fmt.Fprintf(os.Stderr, "dtsim: chaos plan: cell %d fails at interval %d, revives at %d (policy %s)\n",
			faults[0].Cell, faults[0].FailAt, faults[0].ReviveAt, policy)
	}

	var s dtmsvs.Session
	var summary func() error
	if *workersN > 0 {
		if len(faults) > 0 {
			return fmt.Errorf("cell failure injection is not supported under the distributed supervisor; drop -workers or the fault flags")
		}
		n := *shards
		if n < 0 {
			n = cfg.NumBS
		}
		if *workerBin != "" {
			opts = append(opts, dtmsvs.WithWorkerProcesses(*workerBin))
		} else if *workerProc {
			opts = append(opts, dtmsvs.WithWorkerProcesses())
		}
		ccfg := dtmsvs.ClusterConfig{Sim: cfg, Shards: n}
		var ds *dtmsvs.DistSession
		var err error
		if *resume != "" {
			err = readCheckpoint(*resume, func(r io.Reader) error {
				ds, err = dtmsvs.ResumeDistributed(ccfg, *workersN, r, opts...)
				return err
			})
		} else {
			ds, err = dtmsvs.OpenDistributed(ccfg, *workersN, opts...)
		}
		if err != nil {
			return err
		}
		s = ds
		summary = func() error {
			trace := ds.Trace()
			radioAcc, err := acc.RadioAccuracy()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr,
				"dtsim: %d users, %d BSs, %d workers, %d intervals → handovers=%d churned=%d radio-accuracy=%.2f%% cache-hit=%.2f%%\n",
				*users, *bs, *workersN, *intervals, trace.Handovers, trace.ChurnedUsers,
				radioAcc*100, trace.CacheHitRate*100)
			if ds.WorkerRestarts() > 0 || ds.WorkerAdoptions() > 0 {
				fmt.Fprintf(os.Stderr,
					"dtsim: recovered: %d worker restart(s), %d heartbeat miss(es), %d adoption(s)\n",
					ds.WorkerRestarts(), ds.HeartbeatMisses(), ds.WorkerAdoptions())
			}
			return nil
		}
	} else if *shards != 0 {
		n := *shards
		if n < 0 {
			n = cfg.NumBS
		}
		ccfg := dtmsvs.ClusterConfig{Sim: cfg, Shards: n, Faults: faults}
		var cs *dtmsvs.ClusterSession
		var err error
		if *resume != "" {
			err = readCheckpoint(*resume, func(r io.Reader) error {
				cs, err = dtmsvs.ResumeCluster(ccfg, r, opts...)
				return err
			})
		} else {
			cs, err = dtmsvs.OpenCluster(ccfg, opts...)
		}
		if err != nil {
			return err
		}
		s = cs
		summary = func() error {
			trace := cs.Trace()
			radioAcc, err := acc.RadioAccuracy()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr,
				"dtsim: %d users, %d BSs, %d shards, %d intervals → handovers=%d churned=%d radio-accuracy=%.2f%% cache-hit=%.2f%%\n",
				*users, *bs, n, *intervals, trace.Handovers, trace.ChurnedUsers,
				radioAcc*100, trace.CacheHitRate*100)
			if trace.CellFailures > 0 {
				fmt.Fprintf(os.Stderr,
					"dtsim: degraded run: %d cell failure(s), %d revival(s), %d twin(s) evacuated, %d/%d intervals degraded\n",
					trace.CellFailures, trace.Revivals, trace.EvacuatedTwins,
					trace.DegradedIntervals, *intervals)
			}
			return nil
		}
	} else {
		var ms *dtmsvs.SimSession
		var err error
		if *resume != "" {
			err = readCheckpoint(*resume, func(r io.Reader) error {
				ms, err = dtmsvs.Resume(cfg, r, opts...)
				return err
			})
		} else {
			ms, err = dtmsvs.Open(cfg, opts...)
		}
		if err != nil {
			return err
		}
		s = ms
		summary = func() error {
			trace := ms.Trace()
			radioAcc, err := acc.RadioAccuracy()
			if err != nil {
				return err
			}
			computeAcc, err := acc.ComputeAccuracy()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr,
				"dtsim: %d users, %d BSs, %d intervals → K=%d silhouette=%.3f radio-accuracy=%.2f%% compute-accuracy=%.2f%% cache-hit=%.2f%%\n",
				*users, *bs, *intervals, trace.K, trace.Silhouette,
				radioAcc*100, computeAcc*100, trace.CacheHitRate*100)
			return nil
		}
	}
	defer s.Close()

	start := s.Interval()
	interrupted := false
	for !s.Done() {
		if _, err := s.Step(ctx); err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			return err
		}
		if *ckptPath != "" && (s.Done() || s.Interval()%*ckptEvery == 0) {
			if err := writeCheckpoint(*ckptPath, s); err != nil {
				return err
			}
		}
	}

	if buffered != nil {
		if err := writeBuffered(w, buffered, *shards != 0); err != nil {
			return err
		}
	}
	if interrupted {
		// A boundary-cancelled session is still checkpointable, so the
		// interrupted run leaves a resume point at exactly the flushed
		// trace prefix.
		if *ckptPath != "" {
			if err := writeCheckpoint(*ckptPath, s); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "dtsim: interrupted after %d of %d intervals; partial trace flushed\n",
			s.Interval(), *intervals)
		return nil
	}
	if s.Interval() == start && start > 0 {
		// The checkpoint was taken at the final boundary: the run is
		// already complete and the summary statistics live with the
		// original run's output.
		fmt.Fprintf(os.Stderr, "dtsim: checkpoint already complete (%d intervals); nothing to resume\n", start)
		return nil
	}
	return summary()
}

// writeMetrics dumps the registry's final snapshot as JSON.
func writeMetrics(path string, reg *dtmsvs.MetricsRegistry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out %s: %w", path, err)
	}
	return f.Close()
}

// writeCheckpoint persists the session state atomically: the bytes
// land in a temp file that replaces path only after a full, synced
// write, so a crash mid-checkpoint never destroys the previous one.
func writeCheckpoint(path string, s dtmsvs.Session) error {
	if err := checkpoint.WriteFile(path, s.Checkpoint); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return nil
}

// readCheckpoint opens a checkpoint file and hands the stream to
// restore.
func readCheckpoint(path string, restore func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	defer f.Close()
	if err := restore(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("resume %s: %w", path, err)
	}
	return nil
}

// writeBuffered converts the buffered sink back to the engine's
// record type and writes the legacy JSON array format.
func writeBuffered(w *os.File, b *dtmsvs.BufferedSink, clustered bool) error {
	if clustered {
		recs := make([]dtmsvs.ClusterRecord, len(b.Records))
		for i, r := range b.Records {
			recs[i] = dtmsvs.ClusterRecord{BS: r.BS, GroupIntervalRecord: r.GroupIntervalRecord}
		}
		return dtmsvs.WriteClusterTraceJSON(w, recs)
	}
	recs := make([]dtmsvs.GroupIntervalRecord, len(b.Records))
	for i, r := range b.Records {
		recs[i] = r.GroupIntervalRecord
	}
	return dtmsvs.WriteTraceJSON(w, recs)
}
