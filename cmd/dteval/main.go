// Command dteval runs the extended evaluation experiments (DESIGN.md
// §4, E1–E4): computing-demand prediction, grouping ablation,
// accuracy vs user count, and predictor baselines.
//
// Usage:
//
//	dteval -exp compute
//	dteval -exp grouping
//	dteval -exp users -counts 50,100,200
//	dteval -exp predictors
//	dteval -exp cluster -out trace.ndjson
//	dteval -trace trace.bin
//
// Every experiment runs through the context-aware session API:
// Ctrl-C cancels at the next interval boundary. For the single-trace
// experiments (compute, cluster, reserve, predictors) -out streams
// the underlying trace as NDJSON (or CSV/binary-columnar with
// -format csv/bin), flushed per interval. "-out -" streams the trace
// to stdout and moves the experiment tables to stderr, so stdout
// stays a clean trace stream.
//
// -trace FILE skips simulation and summarizes a previously written
// trace instead; the format (json, ndjson, csv or bin) is
// auto-detected from the file's first bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"dtmsvs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dteval:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "compute", `experiment: "compute", "grouping", "users", "predictors", "reserve", "waste", "qoe", "churn" or "cluster"`)
		seed      = flag.Int64("seed", 42, "random seed")
		users     = flag.Int("users", 100, "base number of users")
		bs        = flag.Int("bs", 4, "number of base stations")
		intervals = flag.Int("intervals", 24, "reservation intervals")
		counts    = flag.String("counts", "50,100,200", "comma-separated user counts for -exp users")
		par       = flag.Int("parallel", 0, "worker goroutines for simulation fan-out and training GEMM row-blocks (0 = all cores; results are identical for any value)")
		shards    = flag.Int("shards", 0, "shard count for -exp cluster (0 = one per BS)")
		out       = flag.String("out", "", "stream the experiment's trace to this file (single-trace experiments only)")
		format    = flag.String("format", "ndjson", `-out stream format: "ndjson", "csv" or "bin" (binary columnar)`)
		tracePath = flag.String("trace", "", "evaluate a previously written trace file (any format: json, ndjson, csv, bin) instead of running an experiment")
	)
	flag.Parse()

	if *tracePath != "" {
		return evalTrace(os.Stdout, *tracePath)
	}

	cfg := dtmsvs.DefaultConfig(*seed)
	cfg.NumUsers = *users
	cfg.NumBS = *bs
	cfg.NumIntervals = *intervals
	cfg.Parallelism = *par

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Only the single-trace experiments can stream their trace; the
	// multi-run sweeps have no single trace to write, so -out there is
	// an error rather than a silently empty file.
	streamable := map[string]bool{"compute": true, "predictors": true, "reserve": true, "cluster": true}
	var opts []dtmsvs.SessionOption
	// Experiment tables print to stdout; with "-out -" the trace stream
	// takes stdout instead and the tables move to stderr so the two
	// never interleave.
	w := io.Writer(os.Stdout)
	if *out != "" {
		if !streamable[*exp] {
			return fmt.Errorf("-out is only supported for single-trace experiments (compute, predictors, reserve, cluster), not %q", *exp)
		}
		sink := io.Writer(os.Stdout)
		if *out == "-" {
			w = os.Stderr
		} else {
			f, ferr := os.Create(*out)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			sink = f
		}
		switch *format {
		case "ndjson":
			opts = append(opts, dtmsvs.WithSink(dtmsvs.NewNDJSONSink(sink)))
		case "csv":
			opts = append(opts, dtmsvs.WithSink(dtmsvs.NewCSVSink(sink)))
		case "bin":
			bsink, serr := dtmsvs.NewBinarySink(sink)
			if serr != nil {
				return serr
			}
			defer bsink.Close()
			opts = append(opts, dtmsvs.WithSink(bsink))
		default:
			return fmt.Errorf("unknown -format %q", *format)
		}
	}

	err := func() error {
		switch *exp {
		case "compute":
			return runCompute(ctx, w, cfg, opts)
		case "grouping":
			return runGrouping(ctx, w, cfg)
		case "users":
			return runUsers(ctx, w, cfg, *counts)
		case "predictors":
			return runPredictors(ctx, w, cfg, opts)
		case "reserve":
			return runReserve(ctx, w, cfg, opts)
		case "waste":
			return runWaste(ctx, w, cfg)
		case "qoe":
			return runQoE(ctx, w, cfg)
		case "churn":
			return runChurn(ctx, w, cfg)
		case "cluster":
			return runCluster(ctx, w, cfg, *shards, opts)
		default:
			return fmt.Errorf("unknown experiment %q", *exp)
		}
	}()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dteval: interrupted; partial output flushed")
		return nil
	}
	return err
}

// evalTrace summarizes a previously written trace file of any format
// (json, ndjson, csv or bin — auto-detected), so stored runs can be
// re-evaluated without re-simulating.
func evalTrace(w io.Writer, path string) error {
	recs, err := dtmsvs.ReadTraceFile(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace %s holds no records", path)
	}
	intervals := map[int]bool{}
	cells := map[int]bool{}
	groups := map[int]bool{}
	var predRBs, actRBs, absRBs float64
	var predCyc, actCyc, absCyc float64
	var predWaste, actWaste float64
	for _, r := range recs {
		intervals[r.Interval] = true
		groups[r.GroupID] = true
		if r.BS >= 0 {
			cells[r.BS] = true
		}
		predRBs += r.PredictedRBs
		actRBs += r.ActualRBs
		absRBs += abs(r.PredictedRBs - r.ActualRBs)
		predCyc += r.PredictedCycles
		actCyc += r.ActualCycles
		absCyc += abs(r.PredictedCycles - r.ActualCycles)
		predWaste += r.PredictedWasteBits
		actWaste += r.ActualWasteBits
	}
	fmt.Fprintf(w, "trace %s\n", path)
	fmt.Fprintf(w, "records: %d   intervals: %d   groups: %d   cells: %d\n",
		len(recs), len(intervals), len(groups), len(cells))
	fmt.Fprintf(w, "radio:   predicted %.1f RBs, actual %.1f RBs, accuracy %.2f%%\n",
		predRBs, actRBs, accuracy(absRBs, actRBs)*100)
	fmt.Fprintf(w, "compute: predicted %.3e cycles, actual %.3e cycles, accuracy %.2f%%\n",
		predCyc, actCyc, accuracy(absCyc, actCyc)*100)
	fmt.Fprintf(w, "waste:   predicted %.3e bits, actual %.3e bits\n", predWaste, actWaste)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// accuracy is the volume-accuracy form the experiments report:
// 1 - Σ|error| / Σ actual, clamped at zero.
func accuracy(absErr, actual float64) float64 {
	if actual == 0 {
		return 1
	}
	if acc := 1 - absErr/actual; acc > 0 {
		return acc
	}
	return 0
}

func runCluster(ctx context.Context, w io.Writer, cfg dtmsvs.Config, shards int, opts []dtmsvs.SessionOption) error {
	// Accuracy folds online so -out streaming (which owns the records)
	// does not break the summary.
	var acc dtmsvs.AccuracyTracker
	opts = append(opts, dtmsvs.WithObserver(acc.Observe))
	s, err := dtmsvs.OpenCluster(dtmsvs.ClusterConfig{Sim: cfg, Shards: shards}, opts...)
	if err != nil {
		return err
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(ctx); err != nil {
			return err
		}
	}
	trace := s.Trace()
	radioAcc, err := acc.RadioAccuracy()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E11 — sharded multi-BS cluster engine")
	fmt.Fprintf(w, "%-6s%8s%6s%14s%12s%10s%10s\n", "bs", "users", "K", "silhouette", "cache-hit", "churned", "migrated")
	for _, c := range trace.Cells {
		fmt.Fprintf(w, "%-6d%8d%6d%14.3f%11.2f%%%10d%10d\n",
			c.BS, c.Users, c.K, c.Silhouette, c.CacheHitRate*100, c.ChurnedUsers, c.AttachedTwins)
	}
	fmt.Fprintf(w, "\nhandovers: %d   aggregate cache-hit: %.2f%%   radio-accuracy: %.2f%%\n",
		trace.Handovers, trace.CacheHitRate*100, radioAcc*100)
	return nil
}

func runCompute(ctx context.Context, w io.Writer, cfg dtmsvs.Config, opts []dtmsvs.SessionOption) error {
	res, err := dtmsvs.RunComputeDemand(ctx, cfg, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E1 — computing resource demand prediction")
	fmt.Fprintf(w, "%-10s%16s%16s\n", "sample", "predicted", "actual")
	for i := range res.Predicted {
		fmt.Fprintf(w, "%-10d%16.3e%16.3e\n", i, res.Predicted[i], res.Actual[i])
	}
	fmt.Fprintf(w, "\nvolume accuracy: %.2f%%\n", res.VolumeAccuracy*100)
	return nil
}

func runGrouping(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunGroupingAblation(ctx, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E2 — grouping ablation (DDQN-K vs fixed-K vs raw features)")
	fmt.Fprintf(w, "%-12s%6s%14s%16s\n", "variant", "K", "silhouette", "radio-accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%6d%14.3f%15.2f%%\n", r.Variant.Name, r.K, r.Silhouette, r.RadioAccuracy*100)
	}
	return nil
}

func runUsers(ctx context.Context, w io.Writer, cfg dtmsvs.Config, countsCSV string) error {
	var counts []int
	for _, f := range strings.Split(countsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("parse -counts: %w", err)
		}
		counts = append(counts, n)
	}
	rows, err := dtmsvs.RunAccuracyVsUsers(ctx, cfg, counts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E3 — prediction accuracy vs user count")
	fmt.Fprintf(w, "%-8s%6s%16s%18s\n", "users", "K", "radio-accuracy", "compute-accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d%6d%15.2f%%%17.2f%%\n", r.Users, r.K, r.RadioAccuracy*100, r.ComputeAccuracy*100)
	}
	return nil
}

func runReserve(ctx context.Context, w io.Writer, cfg dtmsvs.Config, opts []dtmsvs.SessionOption) error {
	rows, err := dtmsvs.RunReservation(ctx, cfg, 0.1, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E7 — radio resource reservation (10% headroom)")
	fmt.Fprintf(w, "%-22s%12s%12s%16s%14s\n", "policy", "waste", "deficit", "violation-rate", "utilization")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s%12.1f%12.1f%15.2f%%%13.2f%%\n",
			r.Policy, r.Waste, r.Deficit, r.ViolationRate*100, r.Utilization*100)
	}
	return nil
}

func runWaste(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunWasteVsPrefetch(ctx, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E8 — wasted multicast traffic vs prefetch depth")
	fmt.Fprintf(w, "%-8s%14s%18s%16s\n", "depth", "waste-share", "pred/actual-waste", "radio-accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d%13.2f%%%18.3f%15.2f%%\n",
			r.PrefetchDepth, r.WasteShare*100, r.AggregateRatio, r.RadioAccuracy*100)
	}
	return nil
}

func runQoE(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunQoEVsBudget(ctx, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E9 — QoE vs shared radio budget")
	fmt.Fprintf(w, "%-10s%12s%16s%18s\n", "budget", "mean-qoe", "mean-bitrate", "under-grant-rate")
	for _, r := range rows {
		budget := "unlimited"
		if r.RBBudget > 0 {
			budget = strconv.Itoa(r.RBBudget)
		}
		fmt.Fprintf(w, "%-10s%12.1f%13.0f kbps%17.2f%%\n",
			budget, r.MeanQoE, r.MeanBitrateBps/1e3, r.UnderGrantRate*100)
	}
	return nil
}

func runChurn(ctx context.Context, w io.Writer, cfg dtmsvs.Config) error {
	rows, err := dtmsvs.RunAccuracyVsChurn(ctx, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E10 — accuracy and grouping stability vs user churn")
	fmt.Fprintf(w, "%-10s%16s%16s%12s\n", "churn", "radio-accuracy", "mean-stability", "churned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10.2f%15.2f%%%16.3f%12d\n",
			r.ChurnPerInterval, r.RadioAccuracy*100, r.MeanStability, r.ChurnedUsers)
	}
	return nil
}

func runPredictors(ctx context.Context, w io.Writer, cfg dtmsvs.Config, opts []dtmsvs.SessionOption) error {
	rows, err := dtmsvs.RunPredictorBaselines(ctx, cfg, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E4 — predictor baselines on radio demand")
	fmt.Fprintf(w, "%-20s%16s\n", "predictor", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s%15.2f%%\n", r.Name, r.Accuracy*100)
	}
	return nil
}
