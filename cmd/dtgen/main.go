// Command dtgen generates the synthetic short-video-streaming-
// challenge-style dataset (see DESIGN.md §2 for the substitution
// rationale) and writes it as CSV or JSON.
//
// Usage:
//
//	dtgen -users 200 -events 50 -videos 500 -format csv > trace.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dtmsvs/internal/video"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		users      = flag.Int("users", 200, "number of users")
		events     = flag.Int("events", 50, "viewing events per user")
		videos     = flag.Int("videos", 500, "catalog size")
		seed       = flag.Int64("seed", 42, "random seed")
		format     = flag.String("format", "csv", `output format: "csv" or "json"`)
		engagement = flag.Float64("engagement", 0.55, "mean engagement in (0,1]")
		out        = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	catalog, err := video.NewCatalog(video.CatalogConfig{
		NumVideos:       *videos,
		CategoryWeights: []float64{5, 3, 2.5, 2, 1},
	}, rng)
	if err != nil {
		return err
	}
	records, err := video.GenerateDataset(catalog, video.DatasetConfig{
		Users:          *users,
		EventsPerUser:  *events,
		MeanEngagement: *engagement,
	}, rng)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		return video.WriteCSV(w, records)
	case "json":
		return video.WriteJSON(w, records)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
