// Command dtworker is the dedicated distributed-simulation worker: it
// speaks the supervisor's binary frame protocol over stdin/stdout and
// does nothing else. A distributed session spawns it with
//
//	dtsim -workers 4 -worker-bin /path/to/dtworker ...
//
// or programmatically via dtmsvs.WithWorkerProcesses("dtworker").
// Everything about the run — configuration, shard assignment, resume
// state, fault schedule — arrives over the wire in the hello frame,
// so the binary takes no flags. Exit status is 0 after an orderly
// shutdown frame and 1 after a protocol or engine error (the
// supervisor treats either death the same way: restart from the last
// acked checkpoint).
package main

import (
	"fmt"
	"os"

	"dtmsvs"
)

func main() {
	if err := dtmsvs.RunWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtworker:", err)
		os.Exit(1)
	}
}
