package dtmsvs

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"dtmsvs/internal/faultinject"
)

// assertWholeIntervalPrefix decodes a (possibly torn) binary backing
// store and asserts every decoded record is the corresponding record
// of the clean run — i.e. the store is a readable prefix — and that
// the decoded count sits on an interval boundary of the clean run's
// per-interval counts.
func assertWholeIntervalPrefix(t *testing.T, store []byte, clean []TraceRecord, perInterval []int) {
	t.Helper()
	got, err := ReadTraceRecordsBin(bytes.NewReader(store))
	if err != nil && !errors.Is(err, ErrTraceCorrupt) {
		t.Fatalf("backing store failed with an untyped error: %v", err)
	}
	if len(got) > len(clean) {
		t.Fatalf("store decoded %d records, clean run has %d", len(got), len(clean))
	}
	assertRecordsBitIdentical(t, got, clean[:len(got)])
	boundary := false
	sum := 0
	for _, n := range append([]int{0}, perInterval...) {
		sum += n
		if len(got) == sum {
			boundary = true
			break
		}
	}
	if !boundary {
		t.Fatalf("store holds %d records — not a whole-interval count %v", len(got), perInterval)
	}
}

// TestBinarySinkRecordFaults: record-level injected faults over a
// BinarySink (the PR 6 sink wrappers) keep the session contract for
// both engines — Step surfaces ErrSink, the backing store stays a
// fully readable whole-interval binary prefix, and Close appends
// nothing.
func TestBinarySinkRecordFaults(t *testing.T) {
	for _, eng := range []struct {
		name string
		open func(opts ...SessionOption) (Session, error)
	}{
		{"sim", func(opts ...SessionOption) (Session, error) { return Open(sessionTestConfig(43, 2), opts...) }},
		{"cluster", func(opts ...SessionOption) (Session, error) {
			return OpenCluster(clusterTestConfig(43, 2, 2), opts...)
		}},
	} {
		t.Run(eng.name, func(t *testing.T) {
			clean, perInterval := bufferedRun(t, eng.open)
			for _, mode := range []faultinject.Mode{faultinject.FailWrite, faultinject.ShortWrite} {
				t.Run(mode.String(), func(t *testing.T) {
					// Fail midway through interval 1's records.
					fault := faultinject.Fault{Mode: mode, N: perInterval[0] + 1 + perInterval[1]/2}
					var buf bytes.Buffer
					bin, err := NewBinarySink(&buf)
					if err != nil {
						t.Fatal(err)
					}
					sink := faultinject.Wrap[TraceRecord](bin, fault)
					s, err := eng.open(WithSink(sink))
					if err != nil {
						t.Fatal(err)
					}
					var serr error
					for !s.Done() {
						if _, serr = s.Step(context.Background()); serr != nil {
							break
						}
					}
					if !errors.Is(serr, ErrSink) || !errors.Is(serr, faultinject.ErrInjected) {
						t.Fatalf("want ErrSink wrapping injected fault, got %v", serr)
					}
					frozen := append([]byte(nil), buf.Bytes()...)
					if cerr := s.Close(); cerr != nil {
						t.Fatalf("close after sink failure: %v", cerr)
					}
					if cerr := bin.Close(); cerr != nil {
						t.Fatalf("binary sink close: %v", cerr)
					}
					if !bytes.Equal(buf.Bytes(), frozen) {
						t.Fatal("Close grew the backing store after a reported sink error")
					}
					got, rerr := ReadTraceRecordsBin(bytes.NewReader(frozen))
					if rerr != nil {
						t.Fatalf("store after record fault not cleanly readable: %v", rerr)
					}
					if len(got) != perInterval[0] {
						t.Fatalf("store holds %d records, want exactly interval 0's %d", len(got), perInterval[0])
					}
					assertRecordsBitIdentical(t, got, clean[:perInterval[0]])
				})
			}
		})
	}
}

// TestBinarySinkFlushFault: an injected flush failure freezes the
// store at the previous interval boundary, and the latched sink never
// flushes again.
func TestBinarySinkFlushFault(t *testing.T) {
	open := func(opts ...SessionOption) (Session, error) { return Open(sessionTestConfig(45, 2), opts...) }
	clean, perInterval := bufferedRun(t, open)

	var buf bytes.Buffer
	bin, err := NewBinarySink(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sink := faultinject.Wrap[TraceRecord](bin, faultinject.Fault{Mode: faultinject.FailFlush, N: 2})
	s, err := open(WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	var serr error
	for !s.Done() {
		if _, serr = s.Step(context.Background()); serr != nil {
			break
		}
	}
	if !errors.Is(serr, ErrSink) || !errors.Is(serr, faultinject.ErrInjected) {
		t.Fatalf("want ErrSink wrapping injected flush fault, got %v", serr)
	}
	frozen := append([]byte(nil), buf.Bytes()...)
	flushes := sink.Flushes()
	if cerr := s.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if sink.Flushes() != flushes {
		t.Fatal("broken sink flushed again on Close")
	}
	if !bytes.Equal(buf.Bytes(), frozen) {
		t.Fatal("Close appended bytes after the reported flush failure")
	}
	got, rerr := ReadTraceRecordsBin(bytes.NewReader(frozen))
	if rerr != nil {
		t.Fatalf("store after flush fault unreadable: %v", rerr)
	}
	assertRecordsBitIdentical(t, got, clean[:perInterval[0]])
}

// TestBinarySinkByteLevelFaults: a BinarySink over an io.Writer that
// fails or short-writes. FailWrite consumes nothing, so the store is
// exactly the last whole-interval flush and decodes cleanly;
// ShortWrite leaves a torn frame whose readable prefix is still
// whole-interval records, with the damage typed as ErrTraceCorrupt.
func TestBinarySinkByteLevelFaults(t *testing.T) {
	open := func(opts ...SessionOption) (Session, error) { return Open(sessionTestConfig(47, 2), opts...) }
	clean, perInterval := bufferedRun(t, open)

	for _, mode := range []faultinject.Mode{faultinject.FailWrite, faultinject.ShortWrite} {
		t.Run(mode.String(), func(t *testing.T) {
			var buf bytes.Buffer
			// The sink issues one underlying Write per flush (header
			// included in the first); fail the second flush's write.
			fw := faultinject.NewWriter(&buf, faultinject.Fault{Mode: mode, N: 2})
			bin, err := NewBinarySink(fw)
			if err != nil {
				t.Fatal(err)
			}
			s, err := open(WithSink(bin))
			if err != nil {
				t.Fatal(err)
			}
			var serr error
			for !s.Done() {
				if _, serr = s.Step(context.Background()); serr != nil {
					break
				}
			}
			if !errors.Is(serr, ErrSink) {
				t.Fatalf("want ErrSink, got %v", serr)
			}
			frozen := append([]byte(nil), buf.Bytes()...)
			if cerr := s.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			if cerr := bin.Close(); cerr != nil {
				t.Fatalf("binary sink close after byte fault: %v", cerr)
			}
			if !bytes.Equal(buf.Bytes(), frozen) {
				t.Fatal("bytes appended after the reported error")
			}
			if mode == faultinject.FailWrite {
				got, rerr := ReadTraceRecordsBin(bytes.NewReader(frozen))
				if rerr != nil {
					t.Fatalf("fail-write store not cleanly readable: %v", rerr)
				}
				assertRecordsBitIdentical(t, got, clean[:perInterval[0]])
			} else {
				assertWholeIntervalPrefix(t, frozen, clean, perInterval)
			}
		})
	}
}

// TestBinarySinkTransientRetry: a transient flush fault is absorbed
// by the session's retry budget, exercising the sink's
// re-encode-on-retry path — the final stream must decode bit-identical
// to the fault-free record sequence.
func TestBinarySinkTransientRetry(t *testing.T) {
	open := func(opts ...SessionOption) (Session, error) { return Open(sessionTestConfig(49, 2), opts...) }
	clean, _ := bufferedRun(t, open)

	var buf bytes.Buffer
	bin, err := NewBinarySink(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sink := faultinject.Wrap[TraceRecord](bin,
		faultinject.Fault{Mode: faultinject.FailFlush, N: 1, Transient: true},
		faultinject.Fault{Mode: faultinject.FailWrite, N: 3, Transient: true},
	)
	s, err := open(WithSink(sink), WithSinkRetry(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, serr := s.Step(context.Background()); serr != nil {
			t.Fatalf("transient faults should be absorbed by retry: %v", serr)
		}
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if cerr := bin.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	got, rerr := ReadTraceRecordsBin(bytes.NewReader(buf.Bytes()))
	if rerr != nil {
		t.Fatal(rerr)
	}
	assertRecordsBitIdentical(t, got, clean)
}
