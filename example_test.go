package dtmsvs_test

import (
	"context"
	"fmt"

	"dtmsvs"
)

// ExampleOpen steps a small scenario one reservation interval at a
// time — the session loop every tool in cmd/ is built on.
func ExampleOpen() {
	cfg := dtmsvs.Config{
		Seed:             7,
		NumUsers:         24,
		NumBS:            4,
		CatalogSize:      120,
		NumIntervals:     2,
		TicksPerInterval: 10,
		WarmupIntervals:  1,
		CompressorEpochs: 2,
		AgentEpisodes:    20,
	}
	s, err := dtmsvs.Open(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer s.Close()
	for !s.Done() {
		rep, err := s.Step(context.Background())
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("interval %d: %d groups\n", rep.Interval, rep.Groups)
	}
	// Output:
	// interval 0: 7 groups
	// interval 1: 7 groups
}

// ExampleOpenCluster streams a sharded run's records into a sink, so
// the session itself never retains the trace.
func ExampleOpenCluster() {
	cfg := dtmsvs.ClusterConfig{
		Sim: dtmsvs.Config{
			Seed:             7,
			NumUsers:         32,
			NumBS:            4,
			CatalogSize:      120,
			NumIntervals:     2,
			TicksPerInterval: 6,
			WarmupIntervals:  1,
			CompressorEpochs: 2,
			AgentEpisodes:    10,
		},
	}
	var sink dtmsvs.BufferedSink
	s, err := dtmsvs.OpenCluster(cfg, dtmsvs.WithSink(&sink))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer s.Close()
	for !s.Done() {
		if _, err := s.Step(context.Background()); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	fmt.Println("records streamed:", len(sink.Records) > 0)
	fmt.Println("session retained:", len(s.Trace().Records))
	// Output:
	// records streamed: true
	// session retained: 0
}
